#include "runtime/runtime.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/graph_audit.hpp"
#include "support/timing.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace feir {

namespace {

/// Identity of the current thread inside a runtime's worker pool.  Runtimes
/// nest (a campaign worker runs a solver that owns its own pool), so the slot
/// records *which* runtime the thread belongs to; pushes into any other
/// runtime take the external round-robin path.
struct WorkerSlot {
  Runtime* rt = nullptr;
  unsigned id = 0;
};
thread_local WorkerSlot tls_worker;

}  // namespace

namespace {
/// Process-wide rotation so nested runtimes (campaign pool + each job's
/// solver pool) pin to disjoint cores instead of all piling onto core 0.
std::atomic<unsigned> g_pin_base{0};
}  // namespace

Runtime::Runtime(unsigned nthreads, bool pin_threads) {
  audit_ = analysis::audit_default();
  if (nthreads == 0) nthreads = 1;
  const unsigned pin_base =
      pin_threads ? g_pin_base.fetch_add(nthreads, std::memory_order_relaxed) : 0;
  queues_.reserve(nthreads);
  clocks_.reserve(nthreads);
  trace_bufs_.resize(nthreads);
  pool_local_.resize(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) {
    queues_.push_back(std::make_unique<LaneDeques>());
    clocks_.push_back(std::make_unique<WorkerClock>());
  }
  workers_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i)
    workers_.emplace_back([this, i, pin_threads, pin_base] {
      worker_loop(i, pin_threads ? static_cast<int>(pin_base + i) : -1);
    });
}

Runtime::~Runtime() {
  taskwait();
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    sleep_cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

// ---------------------------------------------------------------------------
// Task pool.
// ---------------------------------------------------------------------------

constexpr std::size_t kPoolCacheMax = 128;  // per-worker cache bound

Runtime::Task* Runtime::acquire_task(std::function<void()> fn, int priority,
                                     std::string name) {
  Task* t = nullptr;
  if (tls_worker.rt == this) {
    std::vector<Task*>& cache = pool_local_[tls_worker.id];
    if (!cache.empty()) {
      t = cache.back();
      cache.pop_back();
    }
  }
  if (t == nullptr) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!pool_free_.empty()) {
      t = pool_free_.back();
      pool_free_.pop_back();
    } else {
      pool_arena_.push_back(std::make_unique<Task>());
      t = pool_arena_.back().get();
    }
  }
  t->fn = std::move(fn);
  t->name = std::move(name);
  t->priority = priority;
  t->cancel = nullptr;
  t->finished = false;
  t->pending.store(1, std::memory_order_relaxed);  // submission guard
  t->refs.store(1, std::memory_order_relaxed);     // execution reference
  return t;
}

void Runtime::release_ref(Task* t) {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) recycle(t);
}

void Runtime::recycle(Task* t) {
  t->fn = nullptr;  // drop captured state outside any scheduler lock
  t->name.clear();
  t->cancel = nullptr;
  t->successors.clear();
  if (tls_worker.rt == this) {
    std::vector<Task*>& cache = pool_local_[tls_worker.id];
    cache.push_back(t);
    if (cache.size() > kPoolCacheMax) {
      // Spill half to the global list so host-side submitters can reuse.
      std::lock_guard<std::mutex> lk(pool_mu_);
      pool_free_.insert(pool_free_.end(), cache.begin() + kPoolCacheMax / 2,
                        cache.end());
      cache.resize(kPoolCacheMax / 2);
    }
    return;
  }
  std::lock_guard<std::mutex> lk(pool_mu_);
  pool_free_.push_back(t);
}

// ---------------------------------------------------------------------------
// Submission: dependency resolution + ready-wave release.
// ---------------------------------------------------------------------------

void Runtime::submit(std::function<void()> fn, std::vector<Dep> deps, int priority,
                     std::string name) {
  Staged s;
  s.task = acquire_task(std::move(fn), priority, std::move(name));
  s.deps = std::move(deps);
  publish(&s, 1);
}

void Runtime::publish(Staged* staged, std::size_t count) {
  if (count == 0) return;
  in_flight_.fetch_add(count, std::memory_order_acq_rel);

  // Graph audit (analysis/graph_audit.hpp): record the edges this publish
  // actually installs among its own tasks, then verify every declared
  // conflict is ordered.  Preds from earlier epochs are ordered through the
  // dependency table by construction, so the intra-publish graph is the
  // whole check surface.  One branch when auditing is off.
  const bool auditing = audit_ && count > 1;
  analysis::GraphSpec audit_spec;
  std::unordered_map<const Task*, std::size_t> audit_index;
  if (auditing) {
    audit_spec.tasks.resize(count);
    audit_index.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      audit_index.emplace(staged[i].task, i);
      audit_spec.tasks[i].name = staged[i].task->name;
      audit_spec.tasks[i].deps = staged[i].deps;
    }
  }

  // Lock the publish's shard set in ascending order: deadlock-free against
  // concurrent publishes, and edge creation across all keys of this graph is
  // one consistent serialization point (no RAW-here / WAR-there cycles).
  bool used[kDepShards] = {};
  bool any_deps = false;
  for (std::size_t i = 0; i < count; ++i) {
    for (const Dep& d : staged[i].deps) {
      used[shard_of(d.key)] = true;
      any_deps = true;
    }
  }

  if (any_deps) {
    std::vector<std::unique_lock<std::mutex>> locks;
    for (unsigned s = 0; s < kDepShards; ++s)
      if (used[s]) locks.emplace_back(shards_[s].mu);

    auto add_edge = [&](Task* pred, Task* succ) {
      if (pred == nullptr || pred == succ) return;
      if (auditing) {
        if (audit_edge_dropper_ != nullptr &&
            audit_edge_dropper_(pred->name, succ->name))
          return;  // canary seam: simulate a scheduler that lost this edge
        const auto pi = audit_index.find(pred);
        const auto si = audit_index.find(succ);
        if (pi != audit_index.end() && si != audit_index.end())
          audit_spec.tasks[si->second].preds.push_back(pi->second);
      }
      std::lock_guard<std::mutex> lk(pred->mu);
      if (pred->finished) return;
      pred->successors.push_back(succ);
      succ->refs.fetch_add(1, std::memory_order_relaxed);
      succ->pending.fetch_add(1, std::memory_order_relaxed);
    };

    for (std::size_t i = 0; i < count; ++i) {
      Task* t = staged[i].task;
      for (const Dep& d : staged[i].deps) {
        DepEntry& e = shards_[shard_of(d.key)].table[d.key];
        switch (d.mode) {
          case Access::In:
            add_edge(e.last_writer, t);  // RAW
            e.readers.push_back(t);
            t->refs.fetch_add(1, std::memory_order_relaxed);
            break;
          case Access::Out:
          case Access::InOut:
            add_edge(e.last_writer, t);               // WAW (and RAW for InOut)
            for (Task* r : e.readers) add_edge(r, t);  // WAR
            if (e.last_writer != nullptr) release_ref(e.last_writer);
            for (Task* r : e.readers) release_ref(r);
            e.readers.clear();
            e.last_writer = t;
            t->refs.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    }
  }

  // Audit before the wave is released: nothing from this publish has run
  // yet, so a violating graph fails fast instead of racing first.
  if (auditing) {
    const std::vector<analysis::Violation> vs = analysis::audit_graph(audit_spec);
    if (!vs.empty()) analysis::fail_audit(audit_spec, vs);
  }

  // Drop the submission guards; everything with no unmet predecessor forms
  // the initial ready wave, released together.
  std::vector<Task*> wave;
  wave.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Task* t = staged[i].task;
    if (t->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) wave.push_back(t);
  }
  push_wave(wave.data(), wave.size());
}

void Runtime::push_wave(Task* const* tasks, std::size_t count) {
  if (count == 0) return;
  // Back-to-front: owners pop LIFO, so a reversed push makes same-lane tasks
  // of one wave come out in submission order.
  auto push_reversed = [](LaneDeques& q, Task* const* first, std::size_t n) {
    std::lock_guard<std::mutex> lk(q.mu);
    for (std::size_t k = n; k-- > 0;) {
      Task* t = first[k];
      const auto lane = static_cast<std::size_t>(lane_of(t->priority));
      q.lanes[lane].push_back(t);
      q.sizes[lane].fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (tls_worker.rt == this) {
    // A worker releases its successors onto its own deque (locality).
    push_reversed(*queues_[tls_worker.id], tasks, count);
  } else {
    // External wave: contiguous slices across the worker deques, one lock
    // per deque; the starting deque rotates so repeated small submissions
    // spread out.  Stealing rebalances whatever this split gets wrong.
    const auto nworkers = static_cast<unsigned>(queues_.size());
    const unsigned start = next_queue_.fetch_add(1, std::memory_order_relaxed);
    for (unsigned j = 0; j < nworkers; ++j) {
      const std::size_t lo = count * j / nworkers;
      const std::size_t hi = count * (j + 1) / nworkers;
      if (lo == hi) continue;
      push_reversed(*queues_[(start + j) % nworkers], tasks + lo, hi - lo);
    }
  }
  // seq_cst on the epoch bump and the sleepers probe (and on their worker
  // counterparts): this is a store-load (Dekker) pattern, so either the
  // sleeper observes the new epoch in its wait predicate or we observe its
  // registration here and notify under the lock -- never neither.
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    if (count > 1)
      sleep_cv_.notify_all();
    else
      sleep_cv_.notify_one();
  }
}

// ---------------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------------

Runtime::Task* Runtime::try_pop_own(unsigned id, int lane) {
  LaneDeques& q = *queues_[id];
  if (q.sizes[static_cast<std::size_t>(lane)].load(std::memory_order_relaxed) == 0)
    return nullptr;
  std::lock_guard<std::mutex> lk(q.mu);
  auto& dq = q.lanes[static_cast<std::size_t>(lane)];
  if (dq.empty()) return nullptr;
  Task* t = dq.back();
  dq.pop_back();
  q.sizes[static_cast<std::size_t>(lane)].fetch_sub(1, std::memory_order_relaxed);
  return t;
}

Runtime::Task* Runtime::try_steal(LaneDeques& victim, int lane) {
  if (victim.sizes[static_cast<std::size_t>(lane)].load(std::memory_order_relaxed) == 0)
    return nullptr;
  std::lock_guard<std::mutex> lk(victim.mu);
  auto& dq = victim.lanes[static_cast<std::size_t>(lane)];
  if (dq.empty()) return nullptr;
  Task* t = dq.front();  // FIFO: steal the oldest, likely-largest work
  dq.pop_front();
  victim.sizes[static_cast<std::size_t>(lane)].fetch_sub(1, std::memory_order_relaxed);
  return t;
}

Runtime::Task* Runtime::find_work(unsigned id) {
  const auto nworkers = static_cast<unsigned>(queues_.size());
  // Own high/normal lanes first (two cheap size probes on the fast path),
  // then a lane-major steal sweep of the same lanes.  The low lane comes
  // strictly last -- own or stolen -- so low-priority (AFEIR recovery) tasks
  // only run when no reduction-path work exists anywhere.
  if (Task* t = try_pop_own(id, 0)) return t;
  if (Task* t = try_pop_own(id, 1)) return t;
  for (int lane = 0; lane < 2; ++lane)
    for (unsigned k = 1; k < nworkers; ++k)
      if (Task* t = try_steal(*queues_[(id + k) % nworkers], lane)) return t;
  if (Task* t = try_pop_own(id, 2)) return t;
  for (unsigned k = 1; k < nworkers; ++k)
    if (Task* t = try_steal(*queues_[(id + k) % nworkers], 2)) return t;
  return nullptr;
}

void Runtime::on_finish(Task* t) {
  std::vector<Task*> succs;
  {
    std::lock_guard<std::mutex> lk(t->mu);
    t->finished = true;
    succs.swap(t->successors);
  }
  if (!succs.empty()) {
    std::vector<Task*> wave;
    wave.reserve(succs.size());
    for (Task* s : succs)
      if (s->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) wave.push_back(s);
    push_wave(wave.data(), wave.size());
    for (Task* s : succs) release_ref(s);
  }
  executed_.fetch_add(1, std::memory_order_release);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(drain_mu_);
    drain_cv_.notify_all();
  }
  release_ref(t);  // execution reference
}

void Runtime::worker_loop(unsigned id, int pin_core) {
#ifdef __linux__
  if (pin_core >= 0) {
    const unsigned ncores = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(pin_core) % ncores, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#else
  (void)pin_core;
#endif
  tls_worker = {this, id};
  WorkerClock& clock = *clocks_[id];
  auto bump = [](std::atomic<double>& c, double dt) {
    c.store(c.load(std::memory_order_relaxed) + dt, std::memory_order_relaxed);
  };

  // One carried timestamp chain (3 clock reads per task, not one Stopwatch
  // pair per state): mark -> found work = idle, -> body done = useful,
  // -> bookkeeping done = runtime.
  double mark = now_seconds();
  for (;;) {
    Task* t = nullptr;
    while (t == nullptr) {
      const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
      t = find_work(id);
      if (t != nullptr) break;
      if (shutdown_.load(std::memory_order_acquire)) return;
      std::unique_lock<std::mutex> lk(sleep_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      sleep_cv_.wait(lk, [&] {
        return shutdown_.load(std::memory_order_relaxed) ||
               work_epoch_.load(std::memory_order_seq_cst) != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    const double t_begin = now_seconds();
    bump(clock.idle, t_begin - mark);

    if (t->cancel == nullptr || !t->cancel->cancelled()) t->fn();
    const double t_end = now_seconds();
    bump(clock.useful, t_end - t_begin);
    if (tracer_ != nullptr) {
      const double origin = tracer_->origin();
      trace_bufs_[id].push_back({id, t->name, t_begin - origin, t_end - origin});
    }

    on_finish(t);
    mark = now_seconds();
    bump(clock.runtime, mark - t_end);
  }
}

// ---------------------------------------------------------------------------
// Synchronization and accounting.
// ---------------------------------------------------------------------------

void Runtime::taskwait() {
  {
    std::unique_lock<std::mutex> lk(drain_mu_);
    drain_cv_.wait(lk, [&] { return in_flight_.load(std::memory_order_acquire) == 0; });
  }
  // The dependency table only grows across iterations; once the graph is
  // drained nothing references past tasks, so return them to the pool.
  for (DepShard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (auto& entry : shard.table) {
      DepEntry& e = entry.second;
      if (e.last_writer != nullptr) release_ref(e.last_writer);
      for (Task* r : e.readers) release_ref(r);
    }
    shard.table.clear();
  }
  // Merge per-worker trace buffers: tracing costs no scheduler lock while
  // tasks run, one bulk append per worker here.
  if (tracer_ != nullptr) {
    for (auto& buf : trace_bufs_) {
      if (!buf.empty()) {
        tracer_->record_batch(std::move(buf));
        buf.clear();
      }
    }
  }
}

Runtime::StateTimes Runtime::state_times() const {
  StateTimes s;
  for (const auto& c : clocks_) {
    s.useful += c->useful.load(std::memory_order_relaxed);
    s.runtime += c->runtime.load(std::memory_order_relaxed);
    s.idle += c->idle.load(std::memory_order_relaxed);
  }
  return s;
}

void Runtime::reset_state_times() {
  for (auto& c : clocks_) {
    c->useful.store(0.0, std::memory_order_relaxed);
    c->runtime.store(0.0, std::memory_order_relaxed);
    c->idle.store(0.0, std::memory_order_relaxed);
  }
}

std::uint64_t Runtime::tasks_executed() const {
  return executed_.load(std::memory_order_acquire);
}

std::uint64_t Runtime::tasks_pending() const {
  return in_flight_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// TaskBatch.
// ---------------------------------------------------------------------------

TaskBatch::~TaskBatch() {
  // Unsubmitted staged tasks are discarded, not published: we only get here
  // with staged work when an exception is unwinding the staging scope, and
  // the lambdas may capture scratch that scope is about to destroy.
  for (Runtime::Staged& s : staged_) rt_.release_ref(s.task);
  staged_.clear();
}

void TaskBatch::add(std::function<void()> fn, std::vector<Dep> deps, int priority,
                    std::string name) {
  Runtime::Staged s;
  s.task = rt_.acquire_task(std::move(fn), priority, std::move(name));
  s.task->cancel = cancel_;
  s.deps = std::move(deps);
  staged_.push_back(std::move(s));
}

void TaskBatch::submit() {
  if (staged_.empty()) return;
  rt_.publish(staged_.data(), staged_.size());
  staged_.clear();
}

}  // namespace feir
