#include "runtime/runtime.hpp"

#include "support/timing.hpp"

namespace feir {

Runtime::Runtime(unsigned nthreads) {
  if (nthreads == 0) nthreads = 1;
  clocks_.resize(nthreads);
  workers_.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Runtime::~Runtime() {
  taskwait();
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Runtime::submit(std::function<void()> fn, std::vector<Dep> deps, int priority,
                     std::string name) {
  auto t = std::make_shared<Task>();
  t->fn = std::move(fn);
  t->name = std::move(name);
  t->priority = priority;

  std::lock_guard<std::mutex> lk(mu_);
  t->seq = seq_counter_++;
  ++in_flight_;

  auto add_edge = [&](const std::shared_ptr<Task>& pred) {
    if (pred && !pred->finished && pred.get() != t.get()) {
      pred->successors.push_back(t);
      ++t->pending;
    }
  };

  for (const Dep& d : deps) {
    DepEntry& e = table_[d.key];
    switch (d.mode) {
      case Access::In:
        add_edge(e.last_writer);  // RAW
        e.readers.push_back(t);
        break;
      case Access::Out:
      case Access::InOut:
        add_edge(e.last_writer);              // WAW (and RAW for InOut)
        for (auto& r : e.readers) add_edge(r);  // WAR
        e.readers.clear();
        e.last_writer = t;
        break;
    }
  }

  if (t->pending == 0) push_ready(t);
}

void Runtime::push_ready(std::shared_ptr<Task> t) {
  ready_.push(std::move(t));
  ready_cv_.notify_one();
}

void Runtime::on_finish(const std::shared_ptr<Task>& t) {
  std::lock_guard<std::mutex> lk(mu_);
  t->finished = true;
  for (auto& s : t->successors) {
    if (--s->pending == 0) push_ready(s);
  }
  t->successors.clear();
  ++executed_;
  if (--in_flight_ == 0) drained_cv_.notify_all();
}

void Runtime::worker_loop(unsigned id) {
  WorkerClock& clock = clocks_[id];
  for (;;) {
    std::shared_ptr<Task> t;
    {
      Stopwatch idle;
      std::unique_lock<std::mutex> lk(mu_);
      ready_cv_.wait(lk, [&] { return shutdown_ || !ready_.empty(); });
      clock.idle += idle.seconds();
      if (shutdown_ && ready_.empty()) return;
      Stopwatch sched;
      t = ready_.top();
      ready_.pop();
      clock.runtime += sched.seconds();
    }
    Stopwatch useful;
    const double t_begin = tracer_ != nullptr ? now_seconds() - tracer_->origin() : 0.0;
    t->fn();
    if (tracer_ != nullptr)
      tracer_->record(id, t->name, t_begin, now_seconds() - tracer_->origin());
    clock.useful += useful.seconds();
    Stopwatch sched;
    on_finish(t);
    clock.runtime += sched.seconds();
  }
}

void Runtime::taskwait() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_cv_.wait(lk, [&] { return in_flight_ == 0; });
  // The dependency table only grows across iterations; once the graph is
  // drained nothing references past tasks, so drop them.
  table_.clear();
}

Runtime::StateTimes Runtime::state_times() const {
  std::lock_guard<std::mutex> lk(mu_);
  StateTimes s;
  for (const auto& c : clocks_) {
    s.useful += c.useful;
    s.runtime += c.runtime;
    s.idle += c.idle;
  }
  return s;
}

void Runtime::reset_state_times() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& c : clocks_) c = WorkerClock{};
}

std::uint64_t Runtime::tasks_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return executed_;
}

std::uint64_t Runtime::tasks_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

}  // namespace feir
