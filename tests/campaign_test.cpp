// Unit and integration tests for src/campaign: grid expansion, seed
// derivation, deterministic iteration-space injection, aggregation
// percentiles, stats merging, report schema/validity, and the subsystem's
// headline property — the same campaign seed reproduces a byte-identical
// JSON report even with jobs running concurrently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <thread>

#include "campaign/aggregate.hpp"
#include "campaign/executor.hpp"
#include "campaign/injection.hpp"
#include "campaign/jobspec.hpp"
#include "campaign/report.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

namespace feir::campaign {
namespace {

// ---------------------------------------------------------------- grid ----

GridSpec small_grid() {
  GridSpec g;
  g.matrices = {"ecology2", "qa8fm"};
  g.solvers = {SolverKind::Cg};
  g.methods = {Method::Feir, Method::Trivial, Method::Checkpoint};
  g.preconds = {PrecondKind::None};
  Injection inj;
  inj.kind = InjectionKind::IterationMtbe;
  inj.mean_iters = 40.0;
  g.injections = {inj};
  g.replicas = 2;
  g.scale = 0.12;
  g.block_rows = 64;
  g.tol = 1e-8;
  g.max_iter = 30000;
  g.ckpt_period_iters = 25;
  return g;
}

TEST(GridExpansion, ProducesTheFullProduct) {
  GridSpec g = small_grid();
  const std::vector<JobSpec> jobs = expand_grid(g);
  EXPECT_EQ(jobs.size(), g.size());
  EXPECT_EQ(jobs.size(), 2u * 1u * 3u * 1u * 1u * 2u);

  // Indices are positional; seeds all distinct and derived from the campaign
  // seed; every axis value appears.
  std::set<std::uint64_t> seeds;
  std::set<std::string> matrices;
  std::set<int> replicas;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].seed, derive_job_seed(g.campaign_seed, i));
    seeds.insert(jobs[i].seed);
    matrices.insert(jobs[i].matrix);
    replicas.insert(jobs[i].replica);
  }
  EXPECT_EQ(seeds.size(), jobs.size());
  EXPECT_EQ(matrices, (std::set<std::string>{"ecology2", "qa8fm"}));
  EXPECT_EQ(replicas, (std::set<int>{0, 1}));
}

TEST(GridExpansion, StampsGridDefaultsOntoEveryJob) {
  const GridSpec g = small_grid();
  for (const JobSpec& j : expand_grid(g)) {
    EXPECT_EQ(j.scale, g.scale);
    EXPECT_EQ(j.block_rows, g.block_rows);
    EXPECT_EQ(j.tol, g.tol);
    EXPECT_EQ(j.max_iter, g.max_iter);
    EXPECT_EQ(j.ckpt_period_iters, g.ckpt_period_iters);
    EXPECT_EQ(j.inject.kind, InjectionKind::IterationMtbe);
  }
}

TEST(GridExpansion, CheckpointJobsInheritWallClockMtbe) {
  GridSpec g = small_grid();
  Injection inj;
  inj.kind = InjectionKind::WallClockMtbe;
  inj.mtbe_s = 0.25;
  g.injections = {inj};
  for (const JobSpec& j : expand_grid(g)) {
    if (j.method == Method::Checkpoint)
      EXPECT_EQ(j.expected_mtbe_s, 0.25);  // feeds the Young/Daly period model
    else
      EXPECT_EQ(j.expected_mtbe_s, 0.0);
  }
}

TEST(GridExpansion, MethodAxisOnlyMultipliesCgJobs) {
  GridSpec g = small_grid();  // 3 methods, 2 matrices, 2 replicas
  g.solvers = {SolverKind::Cg, SolverKind::Bicgstab, SolverKind::Gmres};
  const std::vector<JobSpec> jobs = expand_grid(g);
  // CG: 3 methods; BiCGStab/GMRES: one job each (the method axis is CG-only).
  EXPECT_EQ(jobs.size(), g.size());
  EXPECT_EQ(jobs.size(), 2u * (3u + 1u + 1u) * 2u);
  for (const JobSpec& j : jobs)
    if (j.solver != SolverKind::Cg)
      EXPECT_EQ(j.method, Method::Ideal);  // canonical, keeps cells unambiguous
}

TEST(DeriveJobSeed, IsDeterministicAndSpreads) {
  EXPECT_EQ(derive_job_seed(1, 0), derive_job_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 8; ++c)
    for (std::uint64_t i = 0; i < 64; ++i) seen.insert(derive_job_seed(c, i));
  EXPECT_EQ(seen.size(), 8u * 64u);
}

// ----------------------------------------------------------- injection ----

TEST(IterationInjector, SameSeedSameErrorSequence) {
  auto run_once = [](std::uint64_t seed) {
    PageBuffer buf(256);
    FaultDomain dom;
    dom.add("x", buf.data(), 256, 64);
    dom.add("g", buf.data(), 256, 64);
    IterationInjector inj(dom, 10.0, seed);
    std::vector<std::string> events;
    for (index_t it = 0; it < 100; ++it) {
      const std::uint64_t before = inj.count();
      inj.on_iteration(it);
      if (inj.count() != before) {
        for (const auto& r : dom.regions())
          for (index_t b = 0; b < r->layout.num_blocks(); ++b)
            if (r->mask.get(b) != BlockState::Ok)
              events.push_back(r->name + ":" + std::to_string(b) + "@" +
                               std::to_string(it));
      }
    }
    return std::make_pair(inj.count(), events);
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  EXPECT_GT(a.first, 0u);  // mean gap 10 over 100 iterations: ~10 errors
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_once(8);
  EXPECT_NE(a.second, c.second);  // different seed, different sequence
}

// ---------------------------------------------------------- aggregation ----

TEST(Percentile, InterpolatesBetweenClosestRanks) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95), 48.0);  // h = 3.8 -> 40 + 0.8*10
  EXPECT_DOUBLE_EQ(percentile({5.0}, 95), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  // Agrees with median on even sizes.
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), median({1, 2, 3, 4}));
}

TEST(Summarize, ComputesFiveNumberSummary) {
  const Summary s = summarize({4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.p95, 3.85);
}

TEST(RecoveryStatsMerge, SumsEveryField) {
  RecoveryStats a, b;
  a.errors_detected = 1;
  a.diag_solves = 2;
  a.restarts = 3;
  b.errors_detected = 10;
  b.diag_solves = 20;
  b.checkpoints = 5;
  b.zeroed_blocks = 7;
  const RecoveryStats m = merge(a, b);
  EXPECT_EQ(m.errors_detected, 11u);
  EXPECT_EQ(m.diag_solves, 22u);
  EXPECT_EQ(m.restarts, 3u);
  EXPECT_EQ(m.checkpoints, 5u);
  EXPECT_EQ(m.zeroed_blocks, 7u);
  a += b;
  EXPECT_EQ(a.errors_detected, m.errors_detected);
  EXPECT_EQ(a.zeroed_blocks, m.zeroed_blocks);
}

TEST(Aggregate, FoldsReplicasIntoCells) {
  // Synthetic campaign: 2 cells x 3 replicas, no solver involved.
  CampaignResult c;
  for (int method = 0; method < 2; ++method)
    for (int rep = 0; rep < 3; ++rep) {
      JobSpec s;
      s.index = c.specs.size();
      s.matrix = "m";
      s.method = method == 0 ? Method::Feir : Method::Lossy;
      s.replica = rep;
      JobResult r;
      r.ran = true;
      r.converged = rep != 2 || method == 0;  // one lossy replica diverges
      r.iterations = 100 + 10 * rep;
      r.final_relres = 1e-11;
      r.errors_injected = static_cast<std::uint64_t>(rep);
      r.stats.restarts = 2;
      c.specs.push_back(s);
      c.results.push_back(r);
    }

  const std::vector<CellSummary> cells = aggregate(c);
  ASSERT_EQ(cells.size(), 2u);
  for (const CellSummary& cell : cells) {
    EXPECT_EQ(cell.jobs, 3u);
    EXPECT_EQ(cell.failed, 0u);
    EXPECT_DOUBLE_EQ(cell.iterations.mean, 110.0);
    EXPECT_DOUBLE_EQ(cell.iterations.p50, 110.0);
    EXPECT_DOUBLE_EQ(cell.iterations.min, 100.0);
    EXPECT_DOUBLE_EQ(cell.iterations.max, 120.0);
    EXPECT_EQ(cell.stats.restarts, 6u);  // merged over replicas
  }
  EXPECT_EQ(cells[0].converged + cells[1].converged, 5u);

  // group_by_cell exposes the same partition as indices.
  const auto groups = group_by_cell(c);
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& [key, idx] : groups) EXPECT_EQ(idx.size(), 3u);
}

// ------------------------------------------------------------- reports ----

/// Minimal recursive-descent JSON syntax check (no external deps): accepts
/// exactly the grammar of RFC 8259 minus number edge cases we never emit.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // {
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // [
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Report, JobRecordIsValidJsonWithTheSharedSchema) {
  JobSpec spec;
  spec.matrix = "thermal2\"quoted";  // escaping must hold
  JobResult r;
  r.ran = true;
  r.converged = true;
  r.iterations = 42;
  r.final_relres = 3.5e-11;
  const std::string rec = job_record_json(spec, r, /*timing=*/true);
  EXPECT_TRUE(JsonChecker(rec).valid()) << rec;
  // Schema keys shared between feir_solve --json and campaign job records.
  for (const char* key : {"\"matrix\"", "\"solver\"", "\"method\"", "\"precond\"",
                          "\"injection\"", "\"seed\"", "\"converged\"", "\"iterations\"",
                          "\"relres\"", "\"errors_injected\"", "\"stats\"", "\"seconds\""})
    EXPECT_NE(rec.find(key), std::string::npos) << key;

  // Without timing, wall-clock fields disappear (the deterministic schema).
  const std::string det = job_record_json(spec, r, /*timing=*/false);
  EXPECT_EQ(det.find("\"seconds\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(det).valid()) << det;
}

TEST(Report, FailedJobsCarryTheErrorInsteadOfResults) {
  JobSpec spec;
  JobResult r;  // ran = false
  r.error = "problem: no such matrix";
  const std::string rec = job_record_json(spec, r, false);
  EXPECT_TRUE(JsonChecker(rec).valid());
  EXPECT_NE(rec.find("\"error\""), std::string::npos);
  EXPECT_EQ(rec.find("\"converged\""), std::string::npos);
}

// -------------------------------------------------- end-to-end campaign ----

TEST(Campaign, DeterministicReplayByteIdenticalJson) {
  auto run_once = [] {
    GridSpec g = small_grid();
    CampaignExecutor ex({.concurrency = 4, .on_job_done = {}});
    CampaignResult res = ex.run(expand_grid(g));
    return campaign_json(res, aggregate(res), g.campaign_seed, /*timing=*/false);
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b) << "same campaign seed must reproduce the identical report";
  EXPECT_TRUE(JsonChecker(a).valid());

  // A different campaign seed shifts every derived job seed and thus the
  // injected error sequences.
  GridSpec g = small_grid();
  g.campaign_seed = 999;
  CampaignExecutor ex({.concurrency = 4, .on_job_done = {}});
  CampaignResult res = ex.run(expand_grid(g));
  EXPECT_NE(campaign_json(res, aggregate(res), g.campaign_seed, false), a);
}

TEST(Campaign, RunsJobsAndConverges) {
  GridSpec g = small_grid();
  g.matrices = {"ecology2"};
  g.methods = {Method::Feir, Method::Afeir};
  std::size_t done_calls = 0;
  ExecutorOptions opts;
  opts.concurrency = 2;
  opts.on_job_done = [&](std::size_t done, std::size_t total, const JobSpec&,
                         const JobResult&) {
    ++done_calls;
    EXPECT_LE(done, total);
  };
  CampaignExecutor ex(opts);
  const CampaignResult res = ex.run(expand_grid(g));
  ASSERT_EQ(res.results.size(), 4u);
  EXPECT_EQ(done_calls, 4u);
  std::uint64_t errors = 0;
  for (const JobResult& r : res.results) {
    EXPECT_TRUE(r.ran) << r.error;
    EXPECT_TRUE(r.converged);  // FEIR/AFEIR absorb page losses exactly
    errors += r.errors_injected;
  }
  EXPECT_GT(errors, 0u);  // mean gap 40 iters: the sweep does see errors
}

TEST(Campaign, UnknownMatrixFailsTheJobNotTheCampaign) {
  GridSpec g = small_grid();
  g.matrices = {"no_such_matrix"};
  g.methods = {Method::Feir};
  g.replicas = 1;
  CampaignExecutor ex({.concurrency = 1, .on_job_done = {}});
  const CampaignResult res = ex.run(expand_grid(g));
  ASSERT_EQ(res.results.size(), 1u);
  EXPECT_FALSE(res.results[0].ran);
  EXPECT_FALSE(res.results[0].error.empty());
  // The report still renders and stays valid.
  const std::string json = campaign_json(res, aggregate(res), 1, false);
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(Campaign, CsvReportsHaveOneRowPerCellAndJob) {
  GridSpec g = small_grid();
  g.matrices = {"ecology2"};
  g.methods = {Method::Feir};
  g.replicas = 3;
  CampaignExecutor ex({.concurrency = 2, .on_job_done = {}});
  const CampaignResult res = ex.run(expand_grid(g));
  const auto cells = aggregate(res);

  const std::string cell_csv = cells_csv(cells, false);
  const std::string job_csv = jobs_csv(res, false);
  const auto lines = [](const std::string& s) {
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
  };
  EXPECT_EQ(lines(cell_csv), 1u + cells.size());
  EXPECT_EQ(lines(job_csv), 1u + res.specs.size());
  EXPECT_EQ(cell_csv.find("seconds"), std::string::npos);  // deterministic mode
}

// ---------------------------------------------------- cancellation ----

// A grid whose jobs cannot converge (tol far below reachable) and cannot
// end on their own inside the test timeout, so only cancellation stops them.
GridSpec endless_grid(int replicas) {
  GridSpec g;
  g.matrices = {"ecology2"};
  g.solvers = {SolverKind::Cg};
  g.methods = {Method::Feir};
  g.preconds = {PrecondKind::None};
  g.injections = {Injection{}};
  g.replicas = replicas;
  g.scale = 0.1;
  g.tol = 1e-300;
  g.max_iter = 1000000000;
  return g;
}

TEST(Cancellation, MidCampaignCancelSkipsQueuedJobsAndPoolStaysReusable) {
  CancelToken token;
  ExecutorOptions opts;
  opts.concurrency = 2;
  opts.cancel = &token;
  CampaignExecutor ex(opts);

  // Cancel as soon as the first jobs are in flight; the 2 running jobs
  // unwind at their next iteration and the remaining 6 are skipped.
  std::thread trip([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token.cancel();
  });
  const CampaignResult res = ex.run(expand_grid(endless_grid(8)));
  trip.join();

  ASSERT_EQ(res.results.size(), 8u);
  std::size_t cancelled = 0, skipped = 0;
  for (const JobResult& r : res.results) {
    EXPECT_TRUE(r.cancelled) << "every job ends by cancellation here";
    cancelled += r.cancelled ? 1 : 0;
    skipped += r.ran ? 0 : 1;
    if (!r.ran) EXPECT_EQ(r.error, "cancelled");
  }
  EXPECT_EQ(cancelled, 8u);
  EXPECT_GE(skipped, 1u) << "queued jobs must be skipped, not run to the cap";

  // The partial report is well-formed and records the cancellations.
  const std::string json = campaign_json(res, aggregate(res), 1, false);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"cancelled\""), std::string::npos);

  // The executor is not wedged: another run() on the same instance returns
  // promptly.  Its options still point at the tripped (sticky) token, so
  // every job reports cancelled; the fresh-token reuse path is covered by
  // ExecutorRunsNormallyAfterACancelledRunWithFreshToken below.
  const CampaignResult res2 = ex.run(expand_grid(endless_grid(2)));
  ASSERT_EQ(res2.results.size(), 2u);
  for (const JobResult& r : res2.results) EXPECT_TRUE(r.cancelled);
}

TEST(Cancellation, ExecutorRunsNormallyAfterACancelledRunWithFreshToken) {
  // Same executor object across runs: run 1 is cancelled immediately, run 2
  // (token disarmed is impossible -- tokens are sticky -- so the executor is
  // rebuilt with no token but keeps its cache through the same instance
  // API): verify a cancelled run leaves no wedged state behind.
  CancelToken token;
  token.cancel();  // tripped before the campaign even starts
  {
    ExecutorOptions opts;
    opts.concurrency = 2;
    opts.cancel = &token;
    CampaignExecutor ex(opts);
    const CampaignResult res = ex.run(expand_grid(endless_grid(4)));
    for (const JobResult& r : res.results) {
      EXPECT_FALSE(r.ran);
      EXPECT_TRUE(r.cancelled);
    }
  }
  // A fresh executor on the same process state converges normally.
  GridSpec g = small_grid();
  g.matrices = {"ecology2"};
  g.methods = {Method::Feir};
  CampaignExecutor ex2({.concurrency = 2, .on_job_done = {}});
  const CampaignResult res2 = ex2.run(expand_grid(g));
  for (const JobResult& r : res2.results) {
    EXPECT_TRUE(r.ran) << r.error;
    EXPECT_TRUE(r.converged);
  }
}

TEST(Cancellation, DeadlineHardStopsARunningSolveWithinTolerance) {
  CancelToken token;  // unarmed: the warmup run below must not be cancelled
  ExecutorOptions opts;
  opts.concurrency = 2;
  opts.cancel = &token;
  CampaignExecutor ex(opts);

  // Pre-warm the problem cache so the deadline window is spent inside the
  // solves, not inside problem assembly on a loaded CI runner (which would
  // make every job take the skipped-before-start path).
  {
    GridSpec warm = endless_grid(1);
    warm.max_iter = 1;
    ex.run(expand_grid(warm));
  }

  token.set_deadline_after(0.3);
  Stopwatch clock;
  const CampaignResult res = ex.run(expand_grid(endless_grid(4)));
  const double wall = clock.seconds();

  // Hard stop: well under the historical best-effort behaviour (which would
  // have run every job to max_iter); generous slack for loaded CI runners.
  EXPECT_LT(wall, 5.0) << "deadline cancellation must hard-stop the campaign";
  ASSERT_EQ(res.results.size(), 4u);
  std::size_t ran_then_cancelled = 0;
  for (const JobResult& r : res.results) {
    EXPECT_TRUE(r.cancelled);
    if (r.ran) {
      ++ran_then_cancelled;
      EXPECT_FALSE(r.converged);
      EXPECT_GT(r.iterations, 0) << "the in-flight solve made progress first";
    }
  }
  EXPECT_GE(ran_then_cancelled, 1u) << "at least the first wave was mid-solve";
}

TEST(Cancellation, RunJobForwardsTheTokenIntoTheSolverLoop) {
  const TestbedProblem p = make_testbed("ecology2", 0.1);
  JobSpec spec;
  spec.matrix = "ecology2";
  spec.scale = 0.1;
  spec.tol = 1e-300;
  spec.max_iter = 1000000000;

  CancelToken token;
  token.set_deadline_after(0.15);
  RunJobExtras extras;
  extras.cancel = &token;

  Stopwatch clock;
  const JobResult r = CampaignExecutor::run_job(spec, p, nullptr, nullptr, extras);
  EXPECT_LT(clock.seconds(), 5.0);
  EXPECT_TRUE(r.ran);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.iterations, 0);
}

TEST(Cancellation, ProgressCallbackStreamsIterationsAndErrorCounts) {
  const TestbedProblem p = make_testbed("ecology2", 0.1);
  JobSpec spec;
  spec.matrix = "ecology2";
  spec.scale = 0.1;
  spec.tol = 1e-8;
  spec.inject.kind = InjectionKind::IterationMtbe;
  spec.inject.mean_iters = 30.0;
  spec.seed = 5;

  std::vector<index_t> iters;
  std::uint64_t last_errors = 0;
  RunJobExtras extras;
  extras.progress = [&](const IterRecord& rec, std::uint64_t errors) {
    iters.push_back(rec.iter);
    EXPECT_GE(errors, last_errors) << "error count is cumulative";
    last_errors = errors;
  };
  const JobResult r = CampaignExecutor::run_job(spec, p, nullptr, nullptr, extras);
  ASSERT_TRUE(r.ran) << r.error;
  EXPECT_TRUE(r.converged);
  ASSERT_FALSE(iters.empty());
  EXPECT_EQ(iters.front(), 0);
  for (std::size_t i = 1; i < iters.size(); ++i) EXPECT_EQ(iters[i], iters[i - 1] + 1);
  EXPECT_EQ(last_errors, r.errors_injected);
}

// A Checkpoint-method job writing through a real on-disk checkpoint file
// must behave exactly like the in-memory variant (the disk branch adds a
// header + checksum, invisible to the solver).
TEST(Campaign, CheckpointJobWithDiskPathConverges) {
  const std::string path =
      "/tmp/feir_campaign_ckpt_" + std::to_string(::getpid()) + ".bin";
  const TestbedProblem p = make_testbed("ecology2", 0.12);
  JobSpec spec;
  spec.matrix = "ecology2";
  spec.scale = 0.12;
  spec.method = Method::Checkpoint;
  spec.ckpt_period_iters = 25;
  spec.ckpt_path = path;
  spec.block_rows = 64;
  spec.tol = 1e-8;
  spec.inject.kind = InjectionKind::IterationMtbe;
  spec.inject.mean_iters = 60.0;
  spec.seed = 3;

  const JobResult r = CampaignExecutor::run_job(spec, p, nullptr, nullptr);
  ASSERT_TRUE(r.ran) << r.error;
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.stats.checkpoints, 0u);
  // The Checkpointer removes its file on destruction.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "checkpoint file must be cleaned up";
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace feir::campaign
