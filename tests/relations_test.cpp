// Property tests for the Table-1 recovery relations: every relation must
// reconstruct the lost block EXACTLY (up to round-off) — that is the paper's
// central claim ("we can even guarantee the exact same data as was lost").
// Parameterized over matrices and block sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "core/relations.hpp"
#include "precond/blockjacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

struct RelCase {
  CsrMatrix A;
  BlockLayout layout;
  std::vector<double> x, g, b, p, q;
};

RelCase make_setup(const std::string& name, index_t block_rows, std::uint64_t seed) {
  RelCase s;
  TestbedProblem tp = make_testbed(name, 0.12);
  s.A = std::move(tp.A);
  s.layout = BlockLayout(s.A.n, block_rows);
  const auto n = static_cast<std::size_t>(s.A.n);
  Rng rng(seed);
  s.x.resize(n);
  s.p.resize(n);
  for (auto& v : s.x) v = rng.uniform(-1, 1);
  for (auto& v : s.p) v = rng.uniform(-1, 1);
  s.b = tp.b;
  s.g.resize(n);
  s.q.resize(n);
  // g = b - A x ; q = A p : the conserved relations under test.
  spmv(s.A, s.x.data(), s.g.data());
  for (index_t i = 0; i < s.A.n; ++i) s.g[static_cast<std::size_t>(i)] =
      s.b[static_cast<std::size_t>(i)] - s.g[static_cast<std::size_t>(i)];
  spmv(s.A, s.p.data(), s.q.data());
  return s;
}

double max_err(const std::vector<double>& a, const std::vector<double>& b,
               index_t r0, index_t r1) {
  double e = 0.0;
  for (index_t i = r0; i < r1; ++i)
    e = std::max(e, std::fabs(a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)]));
  return e;
}

using Param = std::tuple<std::string, index_t>;

class RelationSuite : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto [name, blk] = GetParam();
    s_ = make_setup(name, blk, 0xFEE1 + static_cast<std::uint64_t>(blk));
  }
  RelCase s_;
};

TEST_P(RelationSuite, SpmvLhsRecoversQExactly) {
  const index_t blk = s_.layout.num_blocks() / 2;
  std::vector<double> q = s_.q;
  fill_range(1e300, q.data(), s_.layout.begin(blk), s_.layout.end(blk));  // destroy
  relation_spmv_lhs(s_.A, s_.layout, blk, s_.p.data(), q.data());
  EXPECT_LT(max_err(q, s_.q, 0, s_.A.n), 1e-11);
}

TEST_P(RelationSuite, SpmvRhsRecoversPExactly) {
  DiagBlockSolver solver(s_.A, s_.layout);
  const index_t blk = s_.layout.num_blocks() / 3;
  std::vector<double> p = s_.p;
  fill_range(1e300, p.data(), s_.layout.begin(blk), s_.layout.end(blk));
  ASSERT_TRUE(relation_spmv_rhs(solver, blk, s_.q.data(), p.data()));
  // Diagonal solves amplify round-off; exactness is relative to the data.
  EXPECT_LT(max_err(p, s_.p, 0, s_.A.n), 1e-8);
}

TEST_P(RelationSuite, LincombBothDirections) {
  const double a = 1.7, c = -0.6;
  const auto n = static_cast<std::size_t>(s_.A.n);
  std::vector<double> u(n);
  lincomb_range(a, s_.x.data(), c, s_.p.data(), u.data(), 0, s_.A.n);

  const index_t blk = 0;
  // Lost u: recompute.
  std::vector<double> u2 = u;
  fill_range(1e300, u2.data(), s_.layout.begin(blk), s_.layout.end(blk));
  relation_lincomb_lhs(s_.layout, blk, a, s_.x.data(), c, s_.p.data(), u2.data());
  EXPECT_LT(max_err(u2, u, 0, s_.A.n), 1e-12);

  // Lost w (the right operand): invert.
  std::vector<double> w = s_.p;
  fill_range(1e300, w.data(), s_.layout.begin(blk), s_.layout.end(blk));
  ASSERT_TRUE(relation_lincomb_rhs(s_.layout, blk, a, s_.x.data(), c, u.data(), w.data()));
  EXPECT_LT(max_err(w, s_.p, 0, s_.A.n), 1e-10);

  EXPECT_FALSE(relation_lincomb_rhs(s_.layout, blk, a, s_.x.data(), 0.0, u.data(), w.data()));
}

TEST_P(RelationSuite, ResidualLhsRecoversGExactly) {
  const index_t blk = s_.layout.num_blocks() - 1;  // short tail block too
  std::vector<double> g = s_.g;
  fill_range(1e300, g.data(), s_.layout.begin(blk), s_.layout.end(blk));
  relation_residual_lhs(s_.A, s_.layout, blk, s_.x.data(), s_.b.data(), g.data());
  EXPECT_LT(max_err(g, s_.g, 0, s_.A.n), 1e-10);
}

TEST_P(RelationSuite, XRhsRecoversIterateExactly) {
  DiagBlockSolver solver(s_.A, s_.layout);
  const index_t blk = s_.layout.num_blocks() / 2;
  std::vector<double> x = s_.x;
  fill_range(1e300, x.data(), s_.layout.begin(blk), s_.layout.end(blk));
  ASSERT_TRUE(relation_x_rhs(solver, blk, s_.b.data(), s_.g.data(), x.data()));
  EXPECT_LT(max_err(x, s_.x, 0, s_.A.n), 1e-7);
}

TEST_P(RelationSuite, CoupledMultiBlockXRecovery) {
  DiagBlockSolver solver(s_.A, s_.layout);
  const index_t nb = s_.layout.num_blocks();
  if (nb < 3) GTEST_SKIP() << "needs >= 3 blocks";
  // Two simultaneous losses, adjacent blocks (worst coupling).
  std::vector<index_t> lost{nb / 2, nb / 2 + 1};
  std::vector<double> x = s_.x;
  for (index_t bb : lost)
    fill_range(1e300, x.data(), s_.layout.begin(bb), s_.layout.end(bb));
  ASSERT_TRUE(relation_x_rhs_multi(solver, lost, s_.b.data(), s_.g.data(), x.data()));
  EXPECT_LT(max_err(x, s_.x, 0, s_.A.n), 1e-7);
}

TEST_P(RelationSuite, CoupledMultiBlockPRecovery) {
  DiagBlockSolver solver(s_.A, s_.layout);
  const index_t nb = s_.layout.num_blocks();
  if (nb < 4) GTEST_SKIP() << "needs >= 4 blocks";
  std::vector<index_t> lost{1, nb - 2};
  std::vector<double> p = s_.p;
  for (index_t bb : lost)
    fill_range(1e300, p.data(), s_.layout.begin(bb), s_.layout.end(bb));
  ASSERT_TRUE(relation_spmv_rhs_multi(solver, lost, s_.q.data(), p.data()));
  EXPECT_LT(max_err(p, s_.p, 0, s_.A.n), 1e-7);
}

TEST_P(RelationSuite, LeastSquaresVariantRecoversX) {
  const index_t blk = 0;
  std::vector<double> x = s_.x;
  fill_range(1e300, x.data(), s_.layout.begin(blk), s_.layout.end(blk));
  ASSERT_TRUE(
      relation_x_least_squares(s_.A, s_.layout, blk, s_.b.data(), s_.g.data(), x.data()));
  EXPECT_LT(max_err(x, s_.x, 0, s_.A.n), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    MatricesAndBlocks, RelationSuite,
    ::testing::Combine(::testing::Values("ecology2", "thermal2", "consph", "qa8fm"),
                       ::testing::Values<index_t>(32, 128, 512)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_b" + std::to_string(std::get<1>(info.param));
    });

TEST(DiagBlockSolver, ReusesBlockJacobiFactors) {
  TestbedProblem p = make_testbed("ecology2", 0.1);
  BlockLayout layout(p.A.n, 64);
  BlockJacobi M(p.A, layout);
  DiagBlockSolver with_shared(p.A, layout, &M);
  DiagBlockSolver standalone(p.A, layout);

  Rng rng(5);
  std::vector<double> rhs(64);
  for (auto& v : rhs) v = rng.uniform(-1, 1);
  std::vector<double> r1 = rhs, r2 = rhs;
  ASSERT_TRUE(with_shared.solve(1, r1.data()));
  ASSERT_TRUE(standalone.solve(1, r2.data()));
  for (std::size_t i = 0; i < rhs.size(); ++i) EXPECT_NEAR(r1[i], r2[i], 1e-12);
}

TEST(DiagBlockSolver, CachesFactorsAcrossCalls) {
  TestbedProblem p = make_testbed("qa8fm", 0.2);
  BlockLayout layout(p.A.n, 128);
  DiagBlockSolver solver(p.A, layout);
  std::vector<double> rhs(128, 1.0), again(128, 1.0);
  ASSERT_TRUE(solver.solve(0, rhs.data()));
  ASSERT_TRUE(solver.solve(0, again.data()));  // second call hits the cache
  for (std::size_t i = 0; i < rhs.size(); ++i) EXPECT_EQ(rhs[i], again[i]);
}

}  // namespace
}  // namespace feir
