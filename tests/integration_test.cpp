// End-to-end scenarios crossing all modules: the Fig.-3 single-error story
// (per-method convergence behaviour), error rates normalized to convergence
// time (the Fig.-4 protocol at test scale), and the full stack running under
// the mprotect backend with a live background injector.
#include <gtest/gtest.h>

#include "core/resilient_cg.hpp"
#include "fault/injector.hpp"
#include "fault/sighandler.hpp"
#include "precond/blockjacobi.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

struct RunResult {
  ResilientCgResult res;
  std::vector<double> x;
};

RunResult run_with_error_in_x(const TestbedProblem& p, Method method, index_t when,
                              const BlockJacobi* M = nullptr) {
  ResilientCgOptions opts;
  opts.method = method;
  opts.block_rows = 64;
  opts.threads = 4;
  opts.tol = 1e-10;
  opts.max_iter = 50000;
  opts.record_history = true;
  if (method == Method::Checkpoint) opts.ckpt.period_iters = 25;

  ResilientCg* cg_ptr = nullptr;
  ErrorInjector* inj_ptr = nullptr;
  bool fired = false;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (!fired && rec.iter == when) {
      ProtectedRegion* r = cg_ptr->domain().find("x");
      r->lose_block(r->layout.num_blocks() / 2);
      (void)inj_ptr;
      fired = true;
    }
  };
  RunResult out;
  ResilientCg cg(p.A, p.b.data(), opts, M);
  ErrorInjector inj(cg.domain(), {1.0, 1, InjectMode::Soft});
  cg_ptr = &cg;
  inj_ptr = &inj;
  out.x.assign(static_cast<std::size_t>(p.A.n), 0.0);
  out.res = cg.solve(out.x.data());
  return out;
}

// The Fig. 3 scenario: same single error in x, five methods, compare their
// convergence behaviour qualitatively.
TEST(Fig3Story, MethodsBehaveAsThePaperDescribes) {
  TestbedProblem p = make_testbed("thermal2", 0.15);

  RunResult ideal = run_with_error_in_x(p, Method::Ideal, 1 << 30);  // never fires
  ASSERT_TRUE(ideal.res.converged);
  const index_t T = ideal.res.iterations;
  const index_t mid = T / 2;

  RunResult feir = run_with_error_in_x(p, Method::Feir, mid);
  RunResult afeir = run_with_error_in_x(p, Method::Afeir, mid);
  RunResult lossy = run_with_error_in_x(p, Method::Lossy, mid);
  RunResult ckpt = run_with_error_in_x(p, Method::Checkpoint, mid);

  ASSERT_TRUE(feir.res.converged);
  ASSERT_TRUE(afeir.res.converged);
  ASSERT_TRUE(lossy.res.converged);
  ASSERT_TRUE(ckpt.res.converged);

  // FEIR/AFEIR: exact recovery, same convergence rate as the ideal CG.
  EXPECT_LE(feir.res.iterations, T + T / 10 + 5);
  EXPECT_LE(afeir.res.iterations, T + T / 10 + 5);
  // Lossy restarts: loses the Krylov history built before the error.
  EXPECT_GT(lossy.res.iterations, feir.res.iterations);
  // Checkpoint rolls back and re-executes.
  EXPECT_GT(ckpt.res.iterations, T);
  // Every method ends at the right answer.
  for (const RunResult* r : {&feir, &afeir, &lossy, &ckpt})
    EXPECT_LE(residual_norm(p.A, r->x.data(), p.b.data()) / norm2(p.b.data(), p.A.n),
              1e-10);
}

// The Fig. 4 protocol at test scale: error frequency normalized to the ideal
// convergence time; FEIR's slowdown must stay modest while errors flow.
TEST(Fig4Protocol, FeirUnderNormalizedRateFive) {
  TestbedProblem p = make_testbed("ecology2", 0.15);

  ResilientCgOptions opts;
  opts.method = Method::Ideal;
  opts.block_rows = 64;
  opts.threads = 4;
  opts.tol = 1e-9;
  ResilientCg ideal(p.A, p.b.data(), opts);
  std::vector<double> x0(static_cast<std::size_t>(p.A.n), 0.0);
  const auto ri = ideal.solve(x0.data());
  ASSERT_TRUE(ri.converged);
  const double tau = std::max(ri.seconds, 1e-3);

  opts.method = Method::Feir;
  opts.max_iter = 100000;
  ResilientCg feir(p.A, p.b.data(), opts);
  ErrorInjector inj(feir.domain(), {tau / 5.0, 31337, InjectMode::Soft});
  inj.start();
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto rf = feir.solve(x.data());
  inj.stop();
  ASSERT_TRUE(rf.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
  // Iteration inflation stays moderate under n=5 (paper: percent-level).
  EXPECT_LE(rf.iterations, ri.iterations * 2 + 20);
}

// Full stack under the real fault path: mprotect poisoning from a live
// injector thread, SIGSEGV handler re-mapping pages, PCG with block-Jacobi
// whose factors double as the recovery solver.
TEST(FullStack, PcgUnderLiveMprotectInjector) {
  install_due_handler();
  TestbedProblem p = make_testbed("ecology2", 0.4);  // several pages
  ASSERT_GE(p.A.n, 6 * static_cast<index_t>(kDoublesPerPage));
  BlockJacobi M(p.A, BlockLayout(p.A.n, static_cast<index_t>(kDoublesPerPage)));

  ResilientCgOptions opts;
  opts.method = Method::Afeir;
  opts.block_rows = static_cast<index_t>(kDoublesPerPage);
  opts.threads = 4;
  opts.tol = 1e-9;
  opts.max_iter = 100000;

  ResilientCg cg(p.A, p.b.data(), opts, &M);
  activate_due_domain(&cg.domain());
  ErrorInjector inj(cg.domain(), {0.05, 7, InjectMode::Mprotect});
  inj.start();
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = cg.solve(x.data());
  inj.stop();
  activate_due_domain(nullptr);

  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
}

// Overheads without errors: recovery tasks that find nothing to do must be
// nearly free (the Table 2 property, asserted loosely at test scale).
TEST(Table2Property, FaultFreeOverheadOrdering) {
  TestbedProblem p = make_testbed("consph", 0.25);

  auto time_method = [&](Method m) {
    ResilientCgOptions opts;
    opts.method = m;
    opts.block_rows = 64;
    opts.threads = 4;
    opts.tol = 1e-9;
    if (m == Method::Checkpoint) opts.ckpt.period_iters = 10;
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      ResilientCg cg(p.A, p.b.data(), opts);
      std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
      const auto r = cg.solve(x.data());
      EXPECT_TRUE(r.converged);
      best = std::min(best, r.seconds);
    }
    return best;
  };

  const double ideal = time_method(Method::Ideal);
  const double trivial = time_method(Method::Trivial);
  const double ckpt = time_method(Method::Checkpoint);
  // Trivial adds no machinery: within noise of ideal.
  EXPECT_LT(trivial, ideal * 1.5 + 0.05);
  // Aggressive checkpointing costs real time (loose: timing noise at this
  // tiny scale can mask part of the cost).
  EXPECT_GT(ckpt, ideal * 0.5);
}

}  // namespace
}  // namespace feir
