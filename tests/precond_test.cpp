// Unit tests for the preconditioners, including the §3.2 partial-application
// property (apply_blocks) that makes preconditioned recovery cheap.
#include <gtest/gtest.h>

#include "precond/blockjacobi.hpp"
#include "precond/precond.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

TEST(Identity, CopiesInput) {
  IdentityPreconditioner I(5, 2);
  const double g[5] = {1, 2, 3, 4, 5};
  double z[5] = {0, 0, 0, 0, 0};
  I.apply(g, z);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(z[i], g[i]);
}

TEST(Jacobi, InvertsDiagonal) {
  JacobiPreconditioner M({2.0, 4.0, 8.0}, 2);
  const double g[3] = {2, 4, 8};
  double z[3];
  M.apply(g, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
  EXPECT_DOUBLE_EQ(z[2], 1.0);
}

TEST(Jacobi, PartialApplicationTouchesOnlyRequestedBlocks) {
  JacobiPreconditioner M({2.0, 2.0, 2.0, 2.0}, 2);
  const double g[4] = {2, 2, 2, 2};
  double z[4] = {-1, -1, -1, -1};
  M.apply_blocks({1}, g, z);
  EXPECT_EQ(z[0], -1);
  EXPECT_EQ(z[1], -1);
  EXPECT_EQ(z[2], 1);
  EXPECT_EQ(z[3], 1);
}

class BlockJacobiSuite : public ::testing::TestWithParam<index_t> {};

TEST_P(BlockJacobiSuite, SolvesBlockDiagonalSystemExactly) {
  // With a block-diagonal matrix, block-Jacobi IS the inverse.
  const index_t block = GetParam();
  CsrMatrix A = laplace2d_5pt(6, 6);  // n = 36
  BlockLayout layout(A.n, block);
  // Build the block-diagonal part of A.
  std::vector<Triplet> ts;
  for (index_t i = 0; i < A.n; ++i)
    for (index_t k = A.row_ptr[static_cast<std::size_t>(i)];
         k < A.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = A.col_idx[static_cast<std::size_t>(k)];
      if (layout.block_of(i) == layout.block_of(j))
        ts.push_back({i, j, A.vals[static_cast<std::size_t>(k)]});
    }
  CsrMatrix D = CsrMatrix::from_triplets(A.n, std::move(ts));
  BlockJacobi M(D, layout);

  Rng rng(block);
  std::vector<double> z_true(static_cast<std::size_t>(A.n)), g(z_true.size()),
      z(z_true.size());
  for (auto& v : z_true) v = rng.uniform(-1, 1);
  spmv(D, z_true.data(), g.data());
  M.apply(g.data(), z.data());
  for (index_t i = 0; i < A.n; ++i)
    EXPECT_NEAR(z[static_cast<std::size_t>(i)], z_true[static_cast<std::size_t>(i)], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockJacobiSuite, ::testing::Values(4, 6, 9, 36));

TEST(BlockJacobi, ApplyBlocksMatchesFullApplyOnThoseRows) {
  CsrMatrix A = thermal2d_5pt(8, 8, 0.7, 3);
  BlockLayout layout(A.n, 16);
  BlockJacobi M(A, layout);
  Rng rng(4);
  std::vector<double> g(static_cast<std::size_t>(A.n)), z_full(g.size()), z_part(g.size(), -9.0);
  for (auto& v : g) v = rng.uniform(-1, 1);
  M.apply(g.data(), z_full.data());
  M.apply_blocks({1, 3}, g.data(), z_part.data());
  for (index_t i = 0; i < A.n; ++i) {
    const index_t b = layout.block_of(i);
    if (b == 1 || b == 3)
      EXPECT_NEAR(z_part[static_cast<std::size_t>(i)], z_full[static_cast<std::size_t>(i)], 1e-12);
    else
      EXPECT_EQ(z_part[static_cast<std::size_t>(i)], -9.0);
  }
}

TEST(BlockJacobi, FactorsAreCholeskyOfDiagonalBlocks) {
  CsrMatrix A = laplace2d_5pt(4, 4);
  BlockLayout layout(16, 8);
  BlockJacobi M(A, layout);
  // L L^T must reproduce the diagonal block.
  const DenseMatrix& L = M.block_factor(0);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += L(i, k) * L(j, k);
      EXPECT_NEAR(s, A.at(i, j), 1e-12);
    }
}

TEST(BlockJacobi, ReducesCgIterations) {
  // Sanity: block-Jacobi must improve conditioning for a jump-coefficient
  // problem (that is the reason the paper evaluates PCG).
  TestbedProblem p = make_testbed("Dubcova3", 0.2);
  BlockLayout layout(p.A.n, 64);
  BlockJacobi M(p.A, layout);
  std::vector<double> g = p.b, z(g.size());
  M.apply(g.data(), z.data());
  // M^{-1} g must differ from g (a real preconditioner) and stay finite.
  double diff = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_TRUE(std::isfinite(z[i]));
    diff += std::fabs(z[i] - g[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(BlockJacobi, ThrowsOnNonSpdBlock) {
  CsrMatrix B = CsrMatrix::from_triplets(2, {{0, 0, -1.0}, {1, 1, 1.0}});
  EXPECT_THROW(BlockJacobi(B, BlockLayout(2, 2)), std::runtime_error);
}

}  // namespace
}  // namespace feir
