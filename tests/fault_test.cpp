// Unit tests for the fault substrate: state masks, the protected-region
// registry, soft injection, the exponential injector thread, and the real
// mprotect + SIGSEGV page-remap path (the paper's own injection mechanism).
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "fault/blockstate.hpp"
#include "fault/domain.hpp"
#include "fault/injector.hpp"
#include "fault/sighandler.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

TEST(StateMask, InitialAllOk) {
  StateMask m(10);
  EXPECT_TRUE(m.all_ok());
  EXPECT_TRUE(m.collect(BlockState::Lost).empty());
}

TEST(StateMask, MarkLostAndCollect) {
  StateMask m(5);
  EXPECT_EQ(m.mark_lost(2), BlockState::Ok);
  EXPECT_EQ(m.mark_lost(2), BlockState::Lost);  // idempotent, reports previous
  m.set(4, BlockState::Skipped);
  EXPECT_FALSE(m.all_ok());
  EXPECT_EQ(m.collect(BlockState::Lost), (std::vector<index_t>{2}));
  EXPECT_EQ(m.collect(BlockState::Skipped), (std::vector<index_t>{4}));
  m.clear();
  EXPECT_TRUE(m.all_ok());
}

TEST(StateMask, SetOkUnlessLostRespectsLoss) {
  StateMask m(3);
  m.set(0, BlockState::Skipped);
  EXPECT_TRUE(m.set_ok_unless_lost(0));
  EXPECT_TRUE(m.ok(0));
  m.mark_lost(1);
  EXPECT_FALSE(m.set_ok_unless_lost(1));
  EXPECT_EQ(m.get(1), BlockState::Lost);
}

TEST(FaultDomain, RegistersAndFindsRegions) {
  FaultDomain dom;
  std::vector<double> v(100);
  auto& r = dom.add("x", v.data(), 100, 32);
  EXPECT_EQ(r.layout.num_blocks(), 4);
  EXPECT_EQ(dom.find("x"), &r);
  EXPECT_EQ(dom.find("nope"), nullptr);
  EXPECT_EQ(dom.total_blocks(), 4);
}

TEST(FaultDomain, PageBackedRegionNeedsPageGranularity) {
  FaultDomain dom;
  PageBuffer buf(kDoublesPerPage);
  EXPECT_THROW(dom.add("bad", buf.data(), 100, 32, &buf), std::invalid_argument);
  EXPECT_NO_THROW(dom.add("ok", buf.data(), static_cast<index_t>(kDoublesPerPage),
                          static_cast<index_t>(kDoublesPerPage), &buf));
}

TEST(FaultDomain, UniformPickCoversAllBlocks) {
  FaultDomain dom;
  std::vector<double> a(64), b(96);
  dom.add("a", a.data(), 64, 32);   // 2 blocks
  dom.add("b", b.data(), 96, 32);   // 3 blocks
  Rng rng(5);
  std::map<std::pair<std::string, index_t>, int> hits;
  for (int i = 0; i < 5000; ++i) {
    auto [r, blk] = dom.pick_uniform(rng);
    ASSERT_NE(r, nullptr);
    ++hits[{r->name, blk}];
  }
  EXPECT_EQ(hits.size(), 5u);
  for (const auto& [key, count] : hits) EXPECT_GT(count, 700) << key.first << key.second;
}

TEST(FaultDomain, EpochIncrementsOnSoftInjection) {
  FaultDomain dom;
  std::vector<double> v(64);
  auto& r = dom.add("v", v.data(), 64, 32);
  ErrorInjector inj(dom, {1.0, 1, InjectMode::Soft});
  const auto before = FaultDomain::epoch().load();
  inj.inject_now(r, 1);
  EXPECT_EQ(FaultDomain::epoch().load(), before + 1);
  EXPECT_EQ(r.mask.get(1), BlockState::Lost);
  EXPECT_EQ(inj.count(), 1u);
  ASSERT_EQ(inj.events().size(), 1u);
  EXPECT_EQ(inj.events()[0].region, "v");
  EXPECT_EQ(inj.events()[0].block, 1);
}

TEST(Injector, ThreadInjectsAtRoughlyTheConfiguredRate) {
  FaultDomain dom;
  std::vector<double> v(64 * 32);
  dom.add("v", v.data(), 64 * 32, 32);
  ErrorInjector inj(dom, {0.01, 7, InjectMode::Soft});  // MTBE 10 ms
  inj.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  inj.stop();
  // ~30 expected; accept a broad band (scheduling noise).
  EXPECT_GE(inj.count(), 8u);
  EXPECT_LE(inj.count(), 120u);
}

TEST(Injector, StopIsIdempotentAndPreventsFurtherInjection) {
  FaultDomain dom;
  std::vector<double> v(64);
  dom.add("v", v.data(), 64, 32);
  ErrorInjector inj(dom, {0.001, 3, InjectMode::Soft});
  inj.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  inj.stop();
  inj.stop();
  const auto n = inj.count();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(inj.count(), n);
}

// --- Real page poisoning via mprotect + SIGSEGV --------------------------

TEST(SigHandler, MprotectPoisonIsRepairedOnAccess) {
  install_due_handler();
  FaultDomain dom;
  PageBuffer buf(3 * kDoublesPerPage);
  for (std::size_t i = 0; i < buf.size(); ++i) buf.data()[i] = 7.0;
  auto& r = dom.add("v", buf.data(), static_cast<index_t>(buf.size()),
                    static_cast<index_t>(kDoublesPerPage), &buf);
  activate_due_domain(&dom);

  const auto hits_before = due_handler_hits();
  ErrorInjector inj(dom, {1.0, 1, InjectMode::Mprotect});
  inj.inject_now(r, 1);
  // The mask is not yet set: the loss is latent until the victim touches it.
  EXPECT_EQ(r.mask.get(1), BlockState::Ok);

  // Touch the poisoned page: SIGSEGV -> handler remaps a fresh zero page.
  const double v = buf.data()[kDoublesPerPage + 5];
  EXPECT_EQ(v, 0.0);
  EXPECT_EQ(r.mask.get(1), BlockState::Lost);
  EXPECT_EQ(due_handler_hits(), hits_before + 1);
  // Neighbouring pages are untouched.
  EXPECT_EQ(buf.data()[5], 7.0);
  EXPECT_EQ(buf.data()[2 * kDoublesPerPage + 5], 7.0);

  activate_due_domain(nullptr);
}

TEST(SigHandler, WriteAccessAlsoRepaired) {
  install_due_handler();
  FaultDomain dom;
  PageBuffer buf(kDoublesPerPage);
  auto& r = dom.add("w", buf.data(), static_cast<index_t>(buf.size()),
                    static_cast<index_t>(kDoublesPerPage), &buf);
  activate_due_domain(&dom);

  buf.poison_page(0);
  buf.data()[3] = 1.5;  // write faults, handler remaps, write retried
  EXPECT_EQ(buf.data()[3], 1.5);
  EXPECT_EQ(r.mask.get(0), BlockState::Lost);

  activate_due_domain(nullptr);
}

}  // namespace
}  // namespace feir
