// Tests of the resilient pipelined CG (Ghysels–Vanroose recurrence on the
// dataflow runtime): bitwise determinism across thread counts and chunk
// sizes, the byte-identical-surviving-state claim under injected DUEs for
// ckpt/feir/afeir (the double-buffered replay recovery re-creates the exact
// uninjected trajectory), the recurrence-drift bound against classic CG over
// the randomized matrix family suite, and the service round-trip with
// "method":"pcg".
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/resilient_cg.hpp"
#include "core/resilient_pipelined_cg.hpp"
#include "fault/injector.hpp"
#include "matrix_families.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

bool bits_equal(const double* a, const double* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(double)) == 0;
}

struct Harness {
  TestbedProblem p;
  ResilientPipelinedCgOptions opts;
  std::vector<double> x;

  explicit Harness(const std::string& name, Method m, double scale = 0.12) {
    p = make_testbed(name, scale);
    opts.method = m;
    opts.block_rows = 64;
    opts.threads = 1;  // byte-compare tests pin the schedule
    opts.tol = 1e-10;
    opts.max_iter = 30000;
    opts.record_history = true;
  }

  /// Runs a solve injecting into the named region at the given iterations
  /// (block chosen deterministically from the seed).  "r"/"w"/"u"/"p"/"s"/
  /// "z" resolve to the generation that is CURRENT at that iteration's sync
  /// point; a "0"/"1" suffix ("r0") names a buffer outright.
  ResilientCgResult run(const std::vector<std::pair<index_t, std::string>>& injections,
                        std::uint64_t seed = 1) {
    ResilientPipelinedCg* pcg_ptr = nullptr;
    ErrorInjector* inj_ptr = nullptr;
    Rng rng(seed);
    std::size_t next = 0;
    auto plan = injections;
    ResilientPipelinedCgOptions o = opts;
    o.on_iteration = [&](const IterRecord& rec) {
      while (next < plan.size() && rec.iter == plan[next].first) {
        std::string name = plan[next].second;
        if (name != "x" && name.size() == 1)
          name += std::to_string((rec.iter + 1) % 2);  // current generation
        ProtectedRegion* r = pcg_ptr->domain().find(name);
        ASSERT_NE(r, nullptr) << name;
        const index_t blk = static_cast<index_t>(
            rng.uniform_int(static_cast<std::uint64_t>(r->layout.num_blocks())));
        inj_ptr->inject_now(*r, blk);
        ++next;
      }
    };
    ResilientPipelinedCg pcg(p.A, p.b.data(), o);
    ErrorInjector inj(pcg.domain(), {1.0, seed, InjectMode::Soft});
    pcg_ptr = &pcg;
    inj_ptr = &inj;
    x.assign(static_cast<std::size_t>(p.A.n), 0.0);
    return pcg.solve(x.data());
  }

  double solution_error() const {
    double e = 0.0, n2 = 0.0;
    for (index_t i = 0; i < p.A.n; ++i) {
      const double d =
          x[static_cast<std::size_t>(i)] - p.x_true[static_cast<std::size_t>(i)];
      e += d * d;
      n2 += p.x_true[static_cast<std::size_t>(i)] * p.x_true[static_cast<std::size_t>(i)];
    }
    return std::sqrt(e / n2);
  }
};

// --------------------------------------------------------- determinism ----

TEST(PipelinedCg, BitwiseDeterministicAcrossThreadsAndChunks) {
  Harness ref("ecology2", Method::Feir);
  const auto r0 = ref.run({});
  ASSERT_TRUE(r0.converged);
  ASSERT_LT(ref.solution_error(), 1e-6);

  struct Cfg {
    unsigned threads;
    index_t nchunks;
  };
  for (const Cfg cfg : {Cfg{2, 0}, Cfg{4, 0}, Cfg{1, 3}, Cfg{4, 7}, Cfg{2, 1}}) {
    Harness h("ecology2", Method::Feir);
    h.opts.threads = cfg.threads;
    h.opts.nchunks = cfg.nchunks;
    const auto r = h.run({});
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, r0.iterations)
        << "threads=" << cfg.threads << " nchunks=" << cfg.nchunks;
    EXPECT_TRUE(bits_equal(h.x.data(), ref.x.data(), h.p.A.n))
        << "threads=" << cfg.threads << " nchunks=" << cfg.nchunks;
    ASSERT_EQ(r.history.size(), r0.history.size());
    for (std::size_t k = 0; k < r.history.size(); ++k)
      ASSERT_EQ(r.history[k].relres, r0.history[k].relres) << "iter " << k;
  }
}

TEST(PipelinedCg, InjectedRunIsDeterministicAcrossThreadCounts) {
  // Injection fires at the host sync point, so the error pattern is keyed to
  // the iteration count and the whole run replays at any worker count.
  const std::vector<std::pair<index_t, std::string>> plan{{10, "r"}, {25, "s"}};
  Harness a("ecology2", Method::Feir);
  const auto ra = a.run(plan, 7);
  ASSERT_TRUE(ra.converged);
  Harness b("ecology2", Method::Feir);
  b.opts.threads = 4;
  const auto rb = b.run(plan, 7);
  ASSERT_TRUE(rb.converged);
  EXPECT_EQ(ra.iterations, rb.iterations);
  EXPECT_TRUE(bits_equal(a.x.data(), b.x.data(), a.p.A.n));
}

// ------------------------------------- byte-identical recovery (DUEs) ----

// The acceptance claim: a DUE on any recurrence vector leaves the surviving
// data byte-identical to the uninjected run.  Every update is a pure
// page-local write whose inputs are double-buffered, so the recovery task
// replays the exact lost computation; the residual history and the returned
// iterate must match the clean run bit for bit.
class PipelinedByteCompare : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelinedByteCompare, DueLeavesTrajectoryByteIdentical) {
  const std::string vec = GetParam();
  Harness clean("ecology2", Method::Feir);
  const auto rc = clean.run({});
  ASSERT_TRUE(rc.converged);

  for (const Method m : {Method::Feir, Method::Afeir}) {
    Harness h("ecology2", m);
    const index_t third = rc.iterations / 3;
    const auto r = h.run({{third, vec}, {2 * third, vec}}, 11);
    ASSERT_TRUE(r.converged) << method_name(m);
    EXPECT_EQ(r.iterations, rc.iterations) << method_name(m);
    EXPECT_TRUE(bits_equal(h.x.data(), clean.x.data(), h.p.A.n)) << method_name(m);
    ASSERT_EQ(r.history.size(), rc.history.size()) << method_name(m);
    for (std::size_t k = 0; k < r.history.size(); ++k)
      ASSERT_EQ(r.history[k].relres, rc.history[k].relres)
          << method_name(m) << " iter " << k;
    // Current-generation hits are consumed data, so recovery must both see
    // the loss and act on it.  Fixed-suffix params may instead land on the
    // generation the next wave overwrites wholesale — the loss heals by pure
    // overwrite (try_set_ok_from after the full page write) without any
    // recovery action, and under AFEIR's overlap possibly before the recovery
    // task even observes it.  Byte equality above is the contract either way.
    const auto& s = r.stats;
    if (vec.size() == 1) {
      EXPECT_GE(s.errors_detected, 2u) << method_name(m);
      EXPECT_GT(s.lincomb_recoveries + s.spmv_recomputes + s.contrib_recomputes, 0u)
          << method_name(m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Vectors, PipelinedByteCompare,
                         ::testing::Values("r", "w", "u", "p", "s", "z", "r0", "w1",
                                           "u0", "p1", "s0", "z1"),
                         [](const auto& info) {
                           std::string n = info.param;
                           if (n.size() == 1) n += "_cur";
                           return n;
                         });

TEST(PipelinedCg, CheckpointRollbackReplaysByteIdentically) {
  // Full-recurrence in-memory snapshots: a rollback restores the exact
  // end-of-iteration state, so the re-executed trajectory — and the returned
  // x — matches the clean run bit for bit (at the cost of redone work).
  Harness clean("ecology2", Method::Checkpoint);
  clean.opts.ckpt.period_iters = 10;
  const auto rc = clean.run({});
  ASSERT_TRUE(rc.converged);

  Harness h("ecology2", Method::Checkpoint);
  h.opts.ckpt.period_iters = 10;
  const auto r = h.run({{rc.iterations / 2, "x"}}, 3);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.stats.rollbacks, 1u);
  EXPECT_GE(r.stats.errors_detected, 1u);
  EXPECT_GT(r.iterations, rc.iterations);  // the rolled-back stretch reran
  EXPECT_TRUE(bits_equal(h.x.data(), clean.x.data(), h.p.A.n));
}

TEST(PipelinedCg, IterateLossRecoversThroughDiagonalSolves) {
  // x losses are the one case outside the bit-exact replay: the inverted
  // residual relation solves for the lost block, so convergence (not byte
  // equality) is the contract.
  Harness clean("ecology2", Method::Feir);
  const auto rc = clean.run({});
  ASSERT_TRUE(rc.converged);

  Harness h("ecology2", Method::Feir);
  const auto r = h.run({{rc.iterations / 2, "x"}}, 5);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.stats.x_recoveries, 1u);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_LE(r.iterations, rc.iterations + rc.iterations / 10 + 6);
}

TEST(PipelinedCg, RepeatedMixedErrorsStillConvergeExactly) {
  Harness clean("thermal2", Method::Afeir);
  const auto rc = clean.run({});
  ASSERT_TRUE(rc.converged);

  Harness h("thermal2", Method::Afeir);
  std::vector<std::pair<index_t, std::string>> plan;
  const char* vecs[] = {"r", "w", "u", "p", "s", "z", "x"};
  for (index_t k = 2; k + 4 < rc.iterations && plan.size() < 12;
       k += std::max<index_t>(rc.iterations / 12, 1))
    plan.emplace_back(k, vecs[plan.size() % 7]);
  const auto r = h.run(plan, 99);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_LE(r.iterations, rc.iterations + rc.iterations / 5 + 10);
}

// ------------------------------------------------ drift vs classic CG ----

// The pipelined recurrence trades one sync point for faster residual drift;
// periodic residual replacement caps it.  Property, over the randomized
// family suite: pipelined CG (a) converges with a verified TRUE residual at
// tolerance, (b) needs at most modestly more iterations than classic CG, and
// (c) its recurrence residual tracks classic CG's within a bounded factor
// (documented drift bound: 1e3 on the running minimum, far below the slack
// rounding alone could consume).
TEST(PipelinedCg, DriftBoundedAgainstClassicCgOverFamilySuite) {
  constexpr int kSeedsPerFamily = 40;  // x 5 families = 200 matrices
  int solved = 0;
  for (int family = 0; family < testmat::kFamilies; ++family) {
    for (int seed = 0; seed < kSeedsPerFamily; ++seed) {
      Rng rng(static_cast<std::uint64_t>(family * 1000 + seed + 1));
      const CsrMatrix A0 = testmat::random_matrix(rng, family);
      // Symmetrize and shift onto strict diagonal dominance: every family
      // becomes SPD, keeping its sparsity pathology.
      std::vector<Triplet> ts;
      std::vector<double> rowsum(static_cast<std::size_t>(A0.n), 0.0);
      std::vector<double> diag(static_cast<std::size_t>(A0.n), 0.0);
      for (index_t i = 0; i < A0.n; ++i)
        for (index_t k = A0.row_ptr[static_cast<std::size_t>(i)];
             k < A0.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
          const index_t j = A0.col_idx[static_cast<std::size_t>(k)];
          const double v = 0.5 * A0.vals[static_cast<std::size_t>(k)];
          if (i == j) {
            diag[static_cast<std::size_t>(i)] += 2.0 * v;
            continue;
          }
          ts.push_back({i, j, v});
          ts.push_back({j, i, v});
          rowsum[static_cast<std::size_t>(i)] += std::abs(v);
          rowsum[static_cast<std::size_t>(j)] += std::abs(v);
        }
      for (index_t i = 0; i < A0.n; ++i)
        ts.push_back({i, i, diag[static_cast<std::size_t>(i)] +
                                rowsum[static_cast<std::size_t>(i)] + 1.0});
      const CsrMatrix A = CsrMatrix::from_triplets(A0.n, std::move(ts));

      std::vector<double> b(static_cast<std::size_t>(A.n));
      for (auto& v : b) v = rng.uniform(-1, 1);

      ResilientCgOptions co;
      co.method = Method::Ideal;
      co.threads = 1;
      co.tol = 1e-9;
      co.max_iter = 2000;
      co.block_rows = 32;
      co.record_history = true;
      ResilientCg cg(A, b.data(), co);
      std::vector<double> xc(static_cast<std::size_t>(A.n), 0.0);
      const auto rc = cg.solve(xc.data());
      if (!rc.converged) continue;  // skip the rare stagnating draw

      ResilientPipelinedCgOptions po;
      po.method = Method::Ideal;
      po.threads = 1;
      po.tol = 1e-9;
      po.max_iter = 2000;
      po.block_rows = 32;
      po.record_history = true;
      ResilientPipelinedCg pcg(A, b.data(), po);
      std::vector<double> xp(static_cast<std::size_t>(A.n), 0.0);
      const auto rp = pcg.solve(xp.data());

      const std::string tag = std::string(testmat::family_name(family)) + "/" +
                              std::to_string(seed) + " n=" + std::to_string(A.n);
      ASSERT_TRUE(rp.converged) << tag;
      EXPECT_LE(rp.final_relres, po.tol) << tag;  // verified TRUE residual
      EXPECT_LE(rp.iterations, rc.iterations + rc.iterations / 2 + 25) << tag;
      // Drift bound on the recurrence residual: running minima stay within a
      // bounded factor of classic CG's at the same iteration.  The absolute
      // term is the attainable rounding floor — on tiny systems classic CG's
      // recurrence residual underflows past machine precision (~1e-18) where
      // a purely multiplicative bound is meaningless; 1e-14 still sits five
      // orders below the solve tolerance, so drift in the regime that matters
      // stays constrained.
      double min_c = 1e300, min_p = 1e300;
      const std::size_t shared = std::min(rp.history.size(), rc.history.size());
      for (std::size_t k = 0; k < shared; ++k) {
        min_c = std::min(min_c, rc.history[k].relres);
        min_p = std::min(min_p, rp.history[k].relres);
        EXPECT_LE(min_p, min_c * 1e3 + 1e-14) << tag << " iter " << k;
      }
      ++solved;
    }
  }
  // The suite must actually exercise the property, not skip its way through.
  EXPECT_GE(solved, 150) << "family suite degenerated";
}

// ------------------------------------------------- service round-trip ----

TEST(PipelinedCg, ServiceSolveRoundTripsWithMethodPcg) {
  const std::string sock =
      "/tmp/feir_pcg_service_" + std::to_string(::getpid()) + ".sock";
  service::ServerOptions opts;
  opts.unix_path = sock;
  opts.workers = 2;
  service::Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  service::Client client;
  ASSERT_TRUE(client.connect_unix(sock, &err)) << err;

  auto field = [](const std::string& line, const char* key) -> std::string {
    service::JsonValue v;
    std::string perr;
    if (!service::json_parse(line, &v, &perr)) return "<unparseable>";
    const service::JsonValue* f = v.find(key);
    if (f == nullptr) return "";
    if (f->is_string()) return f->string;
    if (f->is_bool()) return f->boolean ? "true" : "false";
    if (f->is_number()) return std::to_string(f->number);
    return "<non-scalar>";
  };

  const std::string req =
      "{\"op\": \"solve\", \"id\": \"pcg1\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"tol\": 1e-8, \"method\": \"pcg\","
      " \"mtbe_iters\": 35, \"seed\": 9}";
  std::string first, second;
  ASSERT_TRUE(client.roundtrip(req, &first));
  EXPECT_EQ(field(first, "event"), "result") << first;
  EXPECT_EQ(field(first, "converged"), "true") << first;
  EXPECT_EQ(field(first, "solver"), "pcg") << first;
  // Deterministic replay: the repeated request is byte-identical.
  ASSERT_TRUE(client.roundtrip(req, &second));
  EXPECT_EQ(first, second);

  // Schema errors, not failed jobs, for the unsupported combinations.
  std::string bad;
  ASSERT_TRUE(client.roundtrip("{\"op\": \"solve\", \"id\": \"pcg2\","
                               " \"solver\": \"pcg\", \"method\": \"trivial\"}",
                               &bad));
  EXPECT_EQ(field(bad, "event"), "error") << bad;
  EXPECT_EQ(field(bad, "code"), "bad_request") << bad;
}

}  // namespace
}  // namespace feir
