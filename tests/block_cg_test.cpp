// Tests for core/resilient_block_cg.hpp: the batched multi-RHS solver.
//
// The contract under test, in order of importance:
//   1. batch-width independence — a width-k batch reproduces k width-1
//      batches bit-for-bit, on either storage backend;
//   2. fault isolation — DUEs injected into column j are recovered with
//      per-column FEIR interpolation and the SURVIVING columns stay
//      byte-identical to an uninjected run;
//   3. per-column convergence, cancellation, and checkpoint rollback.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/injection.hpp"
#include "campaign/jobspec.hpp"
#include "core/resilient_block_cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "sparse/vecops.hpp"
#include "support/cancel.hpp"

namespace feir {
namespace {

bool bits_equal(const double* a, const double* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(double)) == 0;
}

struct BatchRun {
  std::vector<double> X;  // row-major n x k
  ResilientBlockCgResult res;
};

/// Runs a batch over the block_rhs family with an optional per-iteration
/// hook (injection).
BatchRun run_batch(const TestbedProblem& p, SparseFormat format, index_t k,
                   ResilientBlockCgOptions opts,
                   const std::vector<double>* rhs = nullptr,
                   std::function<void(ResilientBlockCg&, index_t, const IterRecord&)>
                       hook = nullptr) {
  const SparseMatrix S = SparseMatrix::make(p.A, format, 8, 64);
  const std::vector<double> B =
      rhs != nullptr ? *rhs : campaign::block_rhs(p.b, k, 7);
  BatchRun run;
  run.X.assign(static_cast<std::size_t>(p.A.n * k), 0.0);
  ResilientBlockCg* live = nullptr;
  if (hook) {
    opts.on_col_iteration = [&live, hook](index_t col, const IterRecord& rec) {
      if (live != nullptr) hook(*live, col, rec);
    };
  }
  ResilientBlockCg solver(S, B.data(), k, opts);
  live = &solver;
  run.res = solver.solve(run.X.data());
  return run;
}

/// Column j of a row-major n x k multivector, deinterleaved.
std::vector<double> column(const std::vector<double>& X, index_t n, index_t k,
                           index_t j) {
  std::vector<double> c(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) c[static_cast<std::size_t>(i)] = X[static_cast<std::size_t>(i * k + j)];
  return c;
}

ResilientBlockCgOptions base_opts() {
  ResilientBlockCgOptions opts;
  opts.tol = 1e-9;
  opts.block_rows = 64;
  opts.threads = 1;
  return opts;
}

// ------------------------------------------------ width independence -----

TEST(BlockCg, BatchWidthOneMatchesWidthFourPerColumnBitwise) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  const index_t k = 4;
  const std::vector<double> B = campaign::block_rhs(p.b, k, 7);
  const BatchRun wide = run_batch(p, SparseFormat::Csr, k, base_opts(), &B);
  ASSERT_TRUE(wide.res.converged);

  for (index_t j = 0; j < k; ++j) {
    // The same column solved alone (a width-1 batch with that rhs).
    std::vector<double> bj(static_cast<std::size_t>(p.A.n));
    for (index_t i = 0; i < p.A.n; ++i) bj[static_cast<std::size_t>(i)] = B[static_cast<std::size_t>(i * k + j)];
    const BatchRun solo = run_batch(p, SparseFormat::Csr, 1, base_opts(), &bj);
    ASSERT_TRUE(solo.res.converged);
    const std::vector<double> xj = column(wide.X, p.A.n, k, j);
    ASSERT_TRUE(bits_equal(xj.data(), solo.X.data(), p.A.n))
        << "column " << j << " diverged from its standalone solve";
    EXPECT_EQ(wide.res.columns[static_cast<std::size_t>(j)].iterations,
              solo.res.columns[0].iterations);
  }
}

TEST(BlockCg, FormatsAgreeBitwiseOnTheWholeBatch) {
  TestbedProblem p = make_testbed("thermal2", 0.12);
  const BatchRun csr = run_batch(p, SparseFormat::Csr, 3, base_opts());
  const BatchRun sell = run_batch(p, SparseFormat::Sell, 3, base_opts());
  ASSERT_TRUE(csr.res.converged);
  ASSERT_TRUE(sell.res.converged);
  ASSERT_TRUE(bits_equal(csr.X.data(), sell.X.data(), p.A.n * 3));
  EXPECT_EQ(csr.res.iterations, sell.res.iterations);
}

TEST(BlockCg, ThreadCountDoesNotChangeTheBits) {
  TestbedProblem p = make_testbed("ecology2", 0.1);
  ResilientBlockCgOptions t4 = base_opts();
  t4.threads = 4;  // chunks the fused SpMM; row partitioning preserves bits
  const BatchRun one = run_batch(p, SparseFormat::Sell, 4, base_opts());
  const BatchRun four = run_batch(p, SparseFormat::Sell, 4, t4);
  ASSERT_TRUE(one.res.converged);
  ASSERT_TRUE(bits_equal(one.X.data(), four.X.data(), p.A.n * 4));
}

// ---------------------------------------------------- fault isolation ----

TEST(BlockCg, InjectedDueLeavesSurvivingColumnsByteIdentical) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  const index_t k = 4, victim = 2;

  const BatchRun clean = run_batch(p, SparseFormat::Csr, k, base_opts());
  ASSERT_TRUE(clean.res.converged);

  // Same batch, DUEs dropped into column `victim` only: a block of its
  // residual, iterate, and direction across a few iterations.
  int injected = 0;
  const BatchRun hit = run_batch(
      p, SparseFormat::Csr, k, base_opts(), nullptr,
      [&injected, victim](ResilientBlockCg& s, index_t col, const IterRecord& rec) {
        if (col != victim) return;
        if (rec.iter == 5 || rec.iter == 9 || rec.iter == 14) {
          FaultDomain& dom = s.domain(victim);
          const char* regions[] = {"g", "x", "d0"};
          ProtectedRegion* r = dom.find(regions[injected % 3]);
          ASSERT_NE(r, nullptr);
          r->lose_block(r->layout.num_blocks() / 2);
          ++injected;
        }
      });
  ASSERT_GE(injected, 3);
  ASSERT_TRUE(hit.res.converged) << "victim column must still converge";
  EXPECT_GT(hit.res.stats.errors_detected, 0u);
  EXPECT_GT(hit.res.stats.diag_solves + hit.res.stats.residual_recomputes +
                hit.res.stats.x_recoveries + hit.res.stats.spmv_recomputes +
                hit.res.stats.restarts,
            0u)
      << "recovery machinery must actually fire";

  for (index_t j = 0; j < k; ++j) {
    const std::vector<double> a = column(clean.X, p.A.n, k, j);
    const std::vector<double> b = column(hit.X, p.A.n, k, j);
    if (j == victim) continue;  // its trajectory may legitimately differ
    ASSERT_TRUE(bits_equal(a.data(), b.data(), p.A.n))
        << "surviving column " << j << " was perturbed by column " << victim
        << "'s DUE";
    EXPECT_EQ(clean.res.columns[static_cast<std::size_t>(j)].iterations,
              hit.res.columns[static_cast<std::size_t>(j)].iterations);
  }
}

TEST(BlockCg, CheckpointMethodRollsTheHitColumnBack) {
  TestbedProblem p = make_testbed("ecology2", 0.1);
  ResilientBlockCgOptions opts = base_opts();
  opts.method = Method::Checkpoint;
  opts.ckpt_period_iters = 10;
  int injected = 0;
  const BatchRun run = run_batch(
      p, SparseFormat::Csr, 2, opts, nullptr,
      [&injected](ResilientBlockCg& s, index_t col, const IterRecord& rec) {
        if (col == 1 && rec.iter == 12 && injected == 0) {
          ProtectedRegion* r = s.domain(1).find("x");
          r->lose_block(0);
          ++injected;
        }
      });
  ASSERT_EQ(injected, 1);
  ASSERT_TRUE(run.res.converged);
  EXPECT_GE(run.res.stats.rollbacks, 1u);
  EXPECT_GE(run.res.stats.checkpoints, 2u);
}

// ------------------------------------- per-column convergence / cancel ----

TEST(BlockCg, ColumnsFreezeIndependently) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  const BatchRun run = run_batch(p, SparseFormat::Csr, 4, base_opts());
  ASSERT_TRUE(run.res.converged);
  ASSERT_EQ(run.res.columns.size(), 4u);
  index_t min_iter = run.res.iterations, max_iter = 0;
  for (const BlockColumnResult& c : run.res.columns) {
    EXPECT_TRUE(c.converged);
    EXPECT_LE(c.final_relres, 1e-9);
    EXPECT_LE(c.iterations, run.res.iterations);
    min_iter = std::min(min_iter, c.iterations);
    max_iter = std::max(max_iter, c.iterations);
  }
  EXPECT_LE(min_iter, max_iter);
}

TEST(BlockCg, PerColumnCancelFreezesOnlyThatColumn) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  CancelToken cancel_col1;
  cancel_col1.cancel();  // tripped before the solve even starts
  CancelToken never;
  ResilientBlockCgOptions opts = base_opts();
  opts.col_cancel = {&never, &cancel_col1, &never};
  const BatchRun run = run_batch(p, SparseFormat::Csr, 3, opts);

  EXPECT_FALSE(run.res.converged) << "a cancelled column is not converged";
  EXPECT_FALSE(run.res.cancelled) << "the batch itself was not cancelled";
  EXPECT_TRUE(run.res.columns[0].converged);
  EXPECT_TRUE(run.res.columns[1].cancelled);
  EXPECT_FALSE(run.res.columns[1].converged);
  EXPECT_EQ(run.res.columns[1].iterations, 0);
  EXPECT_TRUE(run.res.columns[2].converged);
}

TEST(BlockCg, BatchCancelStopsEverything) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  CancelToken token;
  token.cancel();
  ResilientBlockCgOptions opts = base_opts();
  opts.cancel = &token;
  const BatchRun run = run_batch(p, SparseFormat::Csr, 2, opts);
  EXPECT_TRUE(run.res.cancelled);
  EXPECT_FALSE(run.res.converged);
  EXPECT_EQ(run.res.iterations, 0);
  for (const BlockColumnResult& c : run.res.columns) EXPECT_TRUE(c.cancelled);
}

TEST(BlockCg, RejectsUnsupportedMethodsAndWidths) {
  TestbedProblem p = make_testbed("ecology2", 0.08);
  const SparseMatrix S(p.A);
  ResilientBlockCgOptions opts = base_opts();
  opts.method = Method::Trivial;
  EXPECT_THROW(ResilientBlockCg(S, p.b.data(), 1, opts), std::invalid_argument);
  opts.method = Method::Lossy;
  EXPECT_THROW(ResilientBlockCg(S, p.b.data(), 1, opts), std::invalid_argument);
  opts.method = Method::Feir;
  EXPECT_THROW(ResilientBlockCg(S, p.b.data(), 0, opts), std::invalid_argument);
  opts.col_cancel = {nullptr, nullptr};  // 2 entries for a width-3 batch
  EXPECT_THROW(ResilientBlockCg(S, p.b.data(), 3, opts), std::invalid_argument);
}

// ------------------------------------------------ campaign integration ----

TEST(BlockCg, RunJobDispatchesBatchedSpecsAndFillsColumns) {
  campaign::JobSpec spec;
  spec.matrix = "ecology2";
  spec.scale = 0.1;
  spec.nrhs = 3;
  spec.tol = 1e-8;
  spec.block_rows = 64;
  spec.inject.kind = campaign::InjectionKind::IterationMtbe;
  spec.inject.mean_iters = 20.0;
  spec.seed = 11;
  const TestbedProblem p = campaign::CampaignExecutor::load_problem("ecology2", 0.1);
  const campaign::JobResult r =
      campaign::CampaignExecutor::run_job(spec, p, nullptr, nullptr);
  ASSERT_TRUE(r.ran) << r.error;
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.columns.size(), 3u);
  EXPECT_GT(r.errors_injected, 0u);
  std::uint64_t col_errors = 0;
  for (const campaign::ColumnOutcome& c : r.columns) {
    EXPECT_TRUE(c.converged);
    col_errors += c.errors_injected;
  }
  EXPECT_EQ(col_errors, r.errors_injected);

  // Replay determinism: the same spec reproduces the identical result.
  const campaign::JobResult again =
      campaign::CampaignExecutor::run_job(spec, p, nullptr, nullptr);
  ASSERT_TRUE(again.ran);
  EXPECT_EQ(r.iterations, again.iterations);
  EXPECT_EQ(r.final_relres, again.final_relres);
  EXPECT_EQ(r.errors_injected, again.errors_injected);
}

TEST(BlockCg, RunJobRejectsUnsupportedBatchCombos) {
  const TestbedProblem p = campaign::CampaignExecutor::load_problem("ecology2", 0.08);
  campaign::JobSpec spec;
  spec.matrix = "ecology2";
  spec.scale = 0.08;
  spec.nrhs = 2;
  spec.solver = campaign::SolverKind::Gmres;
  campaign::JobResult r = campaign::CampaignExecutor::run_job(spec, p, nullptr, nullptr);
  EXPECT_FALSE(r.ran);
  EXPECT_NE(r.error.find("solver cg"), std::string::npos) << r.error;

  spec.solver = campaign::SolverKind::Cg;
  spec.inject.kind = campaign::InjectionKind::WallClockMtbe;
  spec.inject.mtbe_s = 0.5;
  r = campaign::CampaignExecutor::run_job(spec, p, nullptr, nullptr);
  EXPECT_FALSE(r.ran);
  EXPECT_NE(r.error.find("deterministically"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace feir
