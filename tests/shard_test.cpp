// Sharded-solve suite: the wire codec, the ExchangePlan/HaloPlan audit over
// randomized matrix families, the analytic ghost-row formula, and the headline
// contract of core/sharded_cg — bitwise-identical iterates, history, and
// solution at ANY rank count, including under injected DUEs recovered with the
// paper's Table-1 relations.  The service-level tests drive the same path
// through a live Server (in-process ranks and the router/worker fan-out) and
// byte-compare the result lines.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/sharded_cg.hpp"
#include "distsim/partition.hpp"
#include "matrix_families.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "shard/wire.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

// ----------------------------------------------------------- wire codec ----

double bits(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

TEST(ShardWire, HexDoubleRoundTripsExactBits) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0 / 3.0,
                          1e-300,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN(),
                          bits(0x7ff8dead00000001ULL)};  // NaN with payload
  for (double v : cases) {
    std::string s;
    shard::append_hex_double(&s, v);
    ASSERT_EQ(s.size(), 16u);
    double back = 0.0;
    ASSERT_TRUE(shard::parse_hex_double(s, &back)) << s;
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << s;
  }
  double out;
  EXPECT_FALSE(shard::parse_hex_double("3ff", &out));               // short
  EXPECT_FALSE(shard::parse_hex_double("3ff000000000000g", &out));  // bad digit
  EXPECT_FALSE(shard::parse_hex_double("3FF0000000000000", &out));  // upper case
}

TEST(ShardWire, HeaderOpenRejectsKindAndIterationMismatches) {
  const std::string msg = shard::wire_header("eps", 42);
  std::string_view payload;
  EXPECT_TRUE(shard::wire_open(msg, "eps", 42, &payload));
  EXPECT_TRUE(payload.empty());
  EXPECT_FALSE(shard::wire_open(msg, "eps", 41, &payload));  // stale iteration
  EXPECT_FALSE(shard::wire_open(msg, "ctl", 42, &payload));  // wrong kind
}

TEST(ShardWire, PartsHaloIndicesScalarCtlRoundTrip) {
  // Parts, with negative/subnormal/NaN values and an empty list.
  const std::vector<std::pair<index_t, double>> parts = {
      {0, -0.0}, {3, 1e-300}, {7, std::numeric_limits<double>::quiet_NaN()}};
  std::vector<std::pair<index_t, double>> parts_back;
  ASSERT_TRUE(shard::decode_parts(shard::encode_parts("eps", 5, parts), "eps", 5,
                                  &parts_back));
  ASSERT_EQ(parts_back.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts_back[i].first, parts[i].first);
    EXPECT_EQ(std::memcmp(&parts_back[i].second, &parts[i].second, 8), 0);
  }
  ASSERT_TRUE(shard::decode_parts(shard::encode_parts("eps", 6, {}), "eps", 6,
                                  &parts_back));
  EXPECT_TRUE(parts_back.empty());

  // Halo: ships v at `rows`, scatters into a fresh vector, carries bad pages.
  std::vector<double> v = {10.5, -0.0, 3.25, 1e-300, -7.0};
  const std::vector<index_t> rows = {1, 3, 4};
  const std::vector<index_t> bad = {2};
  const std::string halo = shard::encode_halo("dh", 9, v.data(), rows, bad);
  std::vector<double> w(5, 99.0);
  std::vector<index_t> bad_back;
  ASSERT_TRUE(shard::decode_halo(halo, "dh", 9, rows, w.data(), &bad_back));
  for (index_t rr : rows) EXPECT_EQ(std::memcmp(&w[rr], &v[rr], 8), 0);
  EXPECT_EQ(w[0], 99.0);  // untouched outside the row list
  EXPECT_EQ(bad_back, bad);

  // Indices (incl. empty) and scalar.
  std::vector<index_t> idx_back;
  ASSERT_TRUE(shard::decode_indices(shard::encode_indices("fil", 2, {0, 8, 21}),
                                    "fil", 2, &idx_back));
  EXPECT_EQ(idx_back, (std::vector<index_t>{0, 8, 21}));
  ASSERT_TRUE(shard::decode_indices(shard::encode_indices("fil", 3, {}), "fil", 3,
                                    &idx_back));
  EXPECT_TRUE(idx_back.empty());
  double a = 0.0;
  ASSERT_TRUE(shard::decode_scalar(shard::encode_scalar("alp", 4, -0.0), "alp", 4, &a));
  EXPECT_TRUE(std::signbit(a));

  // Control broadcast.
  shard::CtlMsg m;
  m.verify = true;
  m.stop = true;
  m.converged = true;
  m.beta = 0.125;
  m.final_relres = 3.5e-11;
  shard::CtlMsg back;
  ASSERT_TRUE(shard::decode_ctl(shard::encode_ctl("ctl", 7, m), "ctl", 7, &back));
  EXPECT_EQ(back.verify, m.verify);
  EXPECT_EQ(back.stop, m.stop);
  EXPECT_EQ(back.restart, m.restart);
  EXPECT_EQ(back.cancelled, m.cancelled);
  EXPECT_EQ(back.converged, m.converged);
  EXPECT_EQ(std::memcmp(&back.beta, &m.beta, 8), 0);
  EXPECT_EQ(std::memcmp(&back.final_relres, &m.final_relres, 8), 0);
}

TEST(ShardWire, MessagesStayInsideTheJsonSafeCharset) {
  // The router tunnels these verbatim inside JSON strings; any character
  // outside [a-z0-9;,:=.-] would need escaping and break that.
  std::vector<double> v = {std::numeric_limits<double>::quiet_NaN(), -1e308};
  const std::string msgs[] = {
      shard::encode_parts("eps", 12, {{4, -0.5}}),
      shard::encode_halo("dh", 3, v.data(), {0, 1}, {5}),
      shard::encode_indices("ned", 0, {1, 2}),
      shard::encode_scalar("alp", 1, -std::numeric_limits<double>::infinity()),
      shard::encode_ctl("ctl", 2, shard::CtlMsg{}),
  };
  for (const std::string& msg : msgs)
    for (char c : msg)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == ';' ||
                  c == ',' || c == ':' || c == '=' || c == '.' || c == '-')
          << "char '" << c << "' in " << msg;
}

TEST(ShardWire, MalformedPayloadsAreRejected) {
  std::vector<std::pair<index_t, double>> parts;
  EXPECT_FALSE(shard::decode_parts("eps;t=1;p=3", "eps", 1, &parts));  // no value
  EXPECT_FALSE(shard::decode_parts("eps;t=1;p=3:zzzz", "eps", 1, &parts));
  std::vector<index_t> idx;
  EXPECT_FALSE(shard::decode_indices("fil;t=1;i=1,x", "fil", 1, &idx));
  double a;
  EXPECT_FALSE(shard::decode_scalar("alp;t=1;a=123", "alp", 1, &a));  // short hex
  std::vector<double> v(2, 0.0);
  std::vector<index_t> bad;
  // Value count must match the row list exactly.
  const std::string one = shard::encode_halo("dh", 1, v.data(), {0}, {});
  EXPECT_FALSE(shard::decode_halo(one, "dh", 1, {0, 1}, v.data(), &bad));
  shard::CtlMsg m;
  EXPECT_FALSE(shard::decode_ctl("ctl;t=1;f=110", "ctl", 1, &m));  // 5 flags
}

// ------------------------------------------- exchange/halo plan audit ----

/// Brute-force expectation: the external rows slab `r` needs, grouped by
/// owning peer, each list sorted ascending — straight from the sparsity.
std::map<index_t, std::vector<index_t>> expected_recv(const CsrMatrix& A,
                                                      const RowPartition& part,
                                                      index_t r) {
  const index_t s0 = part.begin(r), s1 = part.end(r);
  std::set<index_t> need;
  for (index_t i = s0; i < s1; ++i)
    for (index_t k = A.row_ptr[i]; k < A.row_ptr[i + 1]; ++k) {
      const index_t j = A.col_idx[k];
      if (j < s0 || j >= s1) need.insert(j);
    }
  std::map<index_t, std::vector<index_t>> by_peer;
  for (index_t j : need) by_peer[part.owner(j)].push_back(j);  // set: ascending
  return by_peer;
}

TEST(ShardPlan, ExchangeAndHaloPlansAgreeOnRandomFamilies) {
  // The audit the halo-plan bugfix demands: 200 random draws across all five
  // pathological families (non-divisible row counts, empty rows, empty slabs
  // when ranks > n), checking build_exchange_plan against the sparsity and
  // build_halo_plan against the exchange lists' sizes.
  Rng rng(0x5a17);
  for (int draw = 0; draw < 200; ++draw) {
    const int family = draw % testmat::kFamilies;
    const CsrMatrix A = testmat::random_matrix(rng, family);
    const index_t ranks = 1 + static_cast<index_t>(rng.uniform_int(8));
    const RowPartition part(A.n, ranks);
    const ExchangePlan plan = build_exchange_plan(A, part);
    const HaloPlan halo = build_halo_plan(A, part);
    SCOPED_TRACE(std::string(testmat::family_name(family)) + " n=" +
                 std::to_string(A.n) + " ranks=" + std::to_string(ranks));

    ASSERT_EQ(plan.ranks, ranks);
    ASSERT_EQ(static_cast<index_t>(plan.slab_begin.size()), ranks + 1);
    ASSERT_EQ(static_cast<index_t>(plan.recv.size()), ranks);
    ASSERT_EQ(static_cast<index_t>(halo.recv_counts.size()), ranks);

    index_t max_degree = 0, max_recv = 0;
    for (index_t r = 0; r < ranks; ++r) {
      EXPECT_EQ(plan.slab_begin[r], part.begin(r));
      const auto want = expected_recv(A, part, r);
      // The plan's recv lists match the sparsity exactly: same peers (in
      // ascending order, none empty), same rows, ascending.
      ASSERT_EQ(plan.recv[r].size(), want.size());
      std::size_t e = 0;
      index_t prev_peer = -1;
      for (const auto& [peer, rows] : plan.recv[r]) {
        EXPECT_GT(peer, prev_peer) << "peers must ascend";
        prev_peer = peer;
        EXPECT_NE(peer, r);
        auto it = want.find(peer);
        ASSERT_NE(it, want.end()) << "unexpected peer " << peer;
        EXPECT_EQ(rows, it->second);
        EXPECT_EQ(plan.recv_rows(r, peer), &rows);
        // Symmetry is definitional: send_rows(r, p) aliases recv_rows(p, r).
        EXPECT_EQ(plan.send_rows(peer, r), &rows);
        ++e;
      }
      EXPECT_EQ(e, want.size());
      for (index_t peer = 0; peer < ranks; ++peer)
        if (want.find(peer) == want.end())
          EXPECT_EQ(plan.recv_rows(r, peer), nullptr);

      // HaloPlan is exactly the exchange lists' sizes.
      ASSERT_EQ(halo.recv_counts[r].size(), plan.recv[r].size());
      index_t total = 0;
      for (std::size_t k = 0; k < plan.recv[r].size(); ++k) {
        EXPECT_EQ(halo.recv_counts[r][k].first, plan.recv[r][k].first);
        EXPECT_EQ(halo.recv_counts[r][k].second,
                  static_cast<index_t>(plan.recv[r][k].second.size()));
        total += halo.recv_counts[r][k].second;
      }
      max_degree = std::max(max_degree, static_cast<index_t>(plan.recv[r].size()));
      max_recv = std::max(max_recv, total);
    }
    EXPECT_EQ(halo.max_degree, max_degree);
    EXPECT_EQ(halo.max_recv, max_recv);
  }
}

TEST(ShardPlan, BandedGhostRowsMatchTheAnalyticFormula) {
  // For a FULL band of width bw, the matrix-derived exchange lists must equal
  // the clipped-band model slab_ghost_rows computes — the one formula the
  // machine model and the real path both use.
  Rng rng(0xba17d);
  for (int draw = 0; draw < 60; ++draw) {
    const index_t n = 1 + static_cast<index_t>(rng.uniform_int(120));
    const index_t bw = static_cast<index_t>(rng.uniform_int(10));
    const index_t ranks = 1 + static_cast<index_t>(rng.uniform_int(9));
    std::vector<Triplet> ts;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = std::max<index_t>(0, i - bw); j < std::min(n, i + bw + 1); ++j)
        ts.push_back({i, j, 1.0});
    const CsrMatrix A = CsrMatrix::from_triplets(n, std::move(ts));
    const RowPartition part(n, ranks);
    const ExchangePlan plan = build_exchange_plan(A, part);
    SCOPED_TRACE("n=" + std::to_string(n) + " bw=" + std::to_string(bw) +
                 " ranks=" + std::to_string(ranks));
    for (index_t r = 0; r < ranks; ++r) {
      index_t volume = 0;
      for (index_t peer = 0; peer < ranks; ++peer) {
        if (peer == r) continue;
        const std::vector<index_t>* rows = plan.recv_rows(r, peer);
        const index_t got = rows == nullptr ? 0 : static_cast<index_t>(rows->size());
        EXPECT_EQ(got, slab_ghost_rows(part, r, peer, bw)) << "peer " << peer;
        volume += got;
      }
      EXPECT_EQ(volume, slab_halo_volume(part, r, bw));
    }
  }
}

TEST(ShardPlan, GhostRowFormulaHandlesDegenerateShapes) {
  // ranks > n: trailing slabs are empty and exchange nothing.
  const RowPartition tiny(3, 8);
  for (index_t r = 0; r < 8; ++r)
    for (index_t peer = 0; peer < 8; ++peer) {
      if (r == peer) continue;
      const index_t g = slab_ghost_rows(tiny, r, peer, 2);
      if (tiny.rows(r) == 0 || tiny.rows(peer) == 0)
        EXPECT_EQ(g, 0) << r << "<-" << peer;
      EXPECT_GE(g, 0);
      EXPECT_LE(g, tiny.rows(peer));
    }
  // A band wider than any slab reaches past the +/-1 neighbour: with n=12,
  // ranks=4 (slabs of 3) and plane=5, rank 0's band [3, 8) covers all of
  // slab 1 and rows 6..7 of slab 2.
  const RowPartition part(12, 4);
  EXPECT_EQ(slab_ghost_rows(part, 0, 1, 5), 3);
  EXPECT_EQ(slab_ghost_rows(part, 0, 2, 5), 2);
  EXPECT_EQ(slab_ghost_rows(part, 0, 3, 5), 0);
  EXPECT_EQ(slab_halo_volume(part, 0, 5), 5);
  // plane=0: no exchange at all.
  EXPECT_EQ(slab_halo_volume(part, 1, 0), 0);
  // Interior rank with a 1-wide band: one row from each neighbour.
  EXPECT_EQ(slab_ghost_rows(part, 1, 0, 1), 1);
  EXPECT_EQ(slab_ghost_rows(part, 1, 2, 1), 1);
  EXPECT_EQ(slab_halo_volume(part, 1, 1), 2);
}

// ------------------------------------------------ sharded CG bitwise ----

const TestbedProblem& shard_problem() {
  // 27x27 Laplacian: 729 rows = 12 pages at block_rows 64, so 2- and 4-rank
  // partitions get multi-page slabs and the injected global pages exist.
  static TestbedProblem p = make_testbed("ecology2", 0.15);
  return p;
}

ShardedCgOptions base_opts() {
  ShardedCgOptions o;
  o.method = Method::Feir;
  o.tol = 1e-8;
  o.block_rows = 64;  // many pages even at the test scale, so slabs are real
  o.record_history = true;
  return o;
}

ShardedCgResult solve_at(index_t ranks, const ShardedCgOptions& opts,
                         std::vector<double>* x) {
  const TestbedProblem& p = shard_problem();
  ShardedCgOptions o = opts;
  o.ranks = ranks;
  x->assign(p.b.size(), 0.0);
  return sharded_cg_solve(p.A, p.b.data(), x->data(), o);
}

void expect_identical_runs(const ShardedCgResult& a, const std::vector<double>& xa,
                           const ShardedCgResult& b, const std::vector<double>& xb) {
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(std::memcmp(&a.final_relres, &b.final_relres, 8), 0);
  ASSERT_EQ(xa.size(), xb.size());
  EXPECT_TRUE(testmat::bits_equal(xa.data(), xb.data(),
                                  static_cast<index_t>(xa.size())));
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iter, b.history[i].iter);
    ASSERT_EQ(std::memcmp(&a.history[i].relres, &b.history[i].relres, 8), 0)
        << "history diverges at record " << i;
  }
}

TEST(ShardedCg, BitwiseInvariantAcrossRankCounts) {
  // The design contract: P-rank solves are byte-identical to the single-rank
  // run — iterates, residual history, and final answer.
  for (Method method : {Method::Ideal, Method::Feir}) {
    ShardedCgOptions o = base_opts();
    o.method = method;
    std::vector<double> x1, x2, x4;
    const ShardedCgResult r1 = solve_at(1, o, &x1);
    const ShardedCgResult r2 = solve_at(2, o, &x2);
    const ShardedCgResult r4 = solve_at(4, o, &x4);
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_TRUE(r1.converged);
    EXPECT_GT(r1.iterations, 5);
    EXPECT_LE(r1.final_relres, o.tol);
    expect_identical_runs(r1, x1, r2, x2);
    expect_identical_runs(r1, x1, r4, x4);
    EXPECT_FALSE(r1.history.empty());
  }
}

TEST(ShardedCg, DueRecomputedMidIterationLeavesAllRanksByteIdentical) {
  // The resilience headline: a DUE lands on one rank's q right after its
  // local SpMV — the mid-iteration window the paper's detector reports into —
  // and the owning rank recomputes the page from the Table-1 SpMV relation
  // while the other ranks keep streaming.  Recomputation replays the exact
  // operation order, so EVERY rank's slab (the survivors above all) is
  // byte-identical to the uninjected run, and the whole thing stays invariant
  // across rank counts.
  ShardedCgOptions clean = base_opts();
  std::vector<double> x_clean;
  const ShardedCgResult r_clean = solve_at(2, clean, &x_clean);
  ASSERT_TRUE(r_clean.ok) << r_clean.error;
  ASSERT_TRUE(r_clean.converged);
  ASSERT_GT(r_clean.iterations, 8);

  ShardedCgOptions o = base_opts();
  using Ph = ShardInjection::Phase;
  // Page 3 lives on rank 0 at P=2 and rank 1 at P=4; page 10 on rank 1 at
  // P=2 and rank 3 at P=4 — both halves of the mesh get hit.
  o.inject = {{4, "q", 3, Ph::kPostSpmv},
              {7, "q", 10, Ph::kPostSpmv},
              {9, "d", 5, Ph::kStart}};
  std::vector<double> x1, x2, x4;
  const ShardedCgResult i1 = solve_at(1, o, &x1);
  const ShardedCgResult i2 = solve_at(2, o, &x2);
  const ShardedCgResult i4 = solve_at(4, o, &x4);
  ASSERT_TRUE(i2.ok) << i2.error;
  EXPECT_EQ(i2.errors_injected, o.inject.size());
  EXPECT_GE(i2.stats.errors_detected, static_cast<std::uint64_t>(o.inject.size()));
  EXPECT_GE(i2.stats.spmv_recomputes, 2u)
      << "the q losses must go through the SpMV recomputation relation";
  // Injected == uninjected, byte for byte (same P): the surviving ranks —
  // and even the injected ones, recovery is exact — never see the DUE...
  expect_identical_runs(r_clean, x_clean, i2, x2);
  // ...and the runs are invariant across rank counts, injections included.
  expect_identical_runs(i1, x1, i2, x2);
  expect_identical_runs(i1, x1, i4, x4);
}

TEST(ShardedCg, EveryRegionsDueConvergesAndStaysRankCountInvariant) {
  // Losses whose Table-1 recovery re-derives the page from a *different*
  // expression (x and d via the diagonal-block solve, g via b - Ax) are
  // mathematically exact but reorder the float ops, and a lost d_prev
  // legitimately forces a verified restart — so those runs may diverge in
  // bits from the uninjected one.  What MUST still hold: convergence, the
  // recovery counters, and bitwise invariance across rank counts.
  ShardedCgOptions o = base_opts();
  using Ph = ShardInjection::Phase;
  o.inject = {
      {2, "x", 1, Ph::kStart},     {3, "g", 2, Ph::kStart},
      {5, "dprev", 0, Ph::kStart}, {6, "d", 4, Ph::kPostSpmv},
  };
  std::vector<double> x1, x2, x4;
  const ShardedCgResult i1 = solve_at(1, o, &x1);
  const ShardedCgResult i2 = solve_at(2, o, &x2);
  const ShardedCgResult i4 = solve_at(4, o, &x4);
  ASSERT_TRUE(i2.ok) << i2.error;
  EXPECT_TRUE(i2.converged);
  EXPECT_EQ(i2.errors_injected, o.inject.size());
  EXPECT_GE(i2.stats.x_recoveries, 1u);
  EXPECT_GE(i2.stats.residual_recomputes, 1u);
  EXPECT_GE(i2.stats.diag_solves, 1u);
  expect_identical_runs(i1, x1, i2, x2);
  expect_identical_runs(i1, x1, i4, x4);
}

TEST(ShardedCg, MtbeInjectionIsDeterministicPerSeed) {
  ShardedCgOptions o = base_opts();
  o.mtbe_iters = 12.0;
  o.seed = 7;
  std::vector<double> xa, xb;
  const ShardedCgResult a = solve_at(2, o, &xa);
  const ShardedCgResult b = solve_at(2, o, &xb);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_TRUE(a.converged);
  EXPECT_GT(a.errors_injected, 0u);
  EXPECT_EQ(a.errors_injected, b.errors_injected);
  expect_identical_runs(a, xa, b, xb);
}

TEST(ShardedCg, InjectionRequiresFeir) {
  ShardedCgOptions o = base_opts();
  o.method = Method::Ideal;
  o.inject = {{1, "g", 0, ShardInjection::Phase::kStart}};
  std::vector<double> x;
  const ShardedCgResult r = solve_at(2, o, &x);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("method feir"), std::string::npos) << r.error;
}

TEST(ShardedCg, MaxIterStopsWithoutConvergence) {
  ShardedCgOptions o = base_opts();
  o.max_iter = 3;
  std::vector<double> x;
  const ShardedCgResult r = solve_at(2, o, &x);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.iterations, 3);
  EXPECT_LE(r.iterations, 4);  // the max_iter round still verifies, then stops
}

}  // namespace
}  // namespace feir

// ------------------------------------------------------ service level ----

namespace feir::service {
namespace {

struct ShardLiveServer {
  std::string sock;
  Server server;
  Client client;

  explicit ShardLiveServer(ServerOptions opts, const char* tag, bool connect = true)
      : sock("/tmp/feir_shard_test_" + std::string(tag) + "_" +
             std::to_string(::getpid()) + ".sock"),
        server([&] {
          opts.unix_path = sock;
          if (opts.workers == 0) opts.workers = 4;
          return opts;
        }()) {
    std::string err;
    EXPECT_TRUE(server.start(&err)) << err;
    if (connect) EXPECT_TRUE(client.connect_unix(sock, &err)) << err;
  }
};

std::string sfield(const std::string& line, const char* key) {
  JsonValue v;
  std::string err;
  if (!json_parse(line, &v, &err)) return "<unparseable: " + err + ">";
  const JsonValue* f = v.find(key);
  if (f == nullptr) return "";
  if (f->is_string()) return f->string;
  if (f->is_bool()) return f->boolean ? "true" : "false";
  if (f->is_number()) return std::to_string(f->number);
  return "<non-scalar>";
}

const char* kShardSolveBody =
    " \"matrix\": \"ecology2\", \"scale\": 0.05, \"tol\": 1e-8,"
    " \"block_rows\": 64";

TEST(ShardService, RankedSolveMatchesTheSingleRankRunByteForByte) {
  ShardLiveServer live({}, "ranked");
  std::string one, two;
  ASSERT_TRUE(live.client.roundtrip(std::string("{\"op\": \"solve\", \"id\": \"a\",") +
                                        kShardSolveBody + ", \"ranks\": 1}",
                                    &one));
  ASSERT_TRUE(live.client.roundtrip(std::string("{\"op\": \"solve\", \"id\": \"a\",") +
                                        kShardSolveBody + ", \"ranks\": 2}",
                                    &two));
  ASSERT_EQ(sfield(one, "event"), "result") << one;
  ASSERT_EQ(sfield(two, "event"), "result") << two;
  EXPECT_EQ(sfield(two, "converged"), "true") << two;
  // The lines must be byte-identical apart from the echoed rank count.
  const std::size_t pos = two.find("\"ranks\": 2");
  ASSERT_NE(pos, std::string::npos) << two;
  two.replace(pos, 10, "\"ranks\": 1");
  EXPECT_EQ(one, two);
}

TEST(ShardService, ReturnXShipsTheExactSolutionBits) {
  ShardLiveServer live({}, "retx");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(std::string("{\"op\": \"solve\", \"id\": \"x\",") +
                                        kShardSolveBody +
                                        ", \"ranks\": 2, \"method\": \"feir\","
                                        " \"return_x\": true}",
                                    &reply));
  ASSERT_EQ(sfield(reply, "event"), "result") << reply;
  const std::string hex = sfield(reply, "x");
  ASSERT_FALSE(hex.empty()) << reply;
  ASSERT_EQ(hex.size() % 16, 0u);
  std::vector<double> got(hex.size() / 16);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_TRUE(shard::parse_hex_double({hex.data() + i * 16, 16}, &got[i]));

  // Decoded bits must equal an in-process sharded solve of the same spec.
  const TestbedProblem p = make_testbed("ecology2", 0.05);
  ASSERT_EQ(got.size(), p.b.size());
  ShardedCgOptions o;
  o.method = Method::Feir;
  o.tol = 1e-8;
  o.block_rows = 64;
  o.ranks = 2;
  std::vector<double> want(p.b.size(), 0.0);
  const ShardedCgResult r = sharded_cg_solve(p.A, p.b.data(), want.data(), o);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(testmat::bits_equal(got.data(), want.data(),
                                  static_cast<index_t>(want.size())));
}

TEST(ShardService, RouterMatchesTheInProcessPathByteForByte) {
  // Two worker servers, one router fanning rank r to workers[r % 2], and a
  // plain in-process server: the router's result line (solution bits
  // included) must be byte-identical to the in-process one.
  ShardLiveServer worker0({}, "w0", /*connect=*/false);
  ShardLiveServer worker1({}, "w1", /*connect=*/false);
  ServerOptions ropts;
  ropts.shard_workers = {worker0.sock, worker1.sock};
  ShardLiveServer router(ropts, "router");
  ShardLiveServer inproc({}, "inproc");

  const std::string req = std::string("{\"op\": \"solve\", \"id\": \"r\",") +
                          kShardSolveBody +
                          ", \"ranks\": 2, \"return_x\": true}";
  std::string via_router, via_inproc;
  ASSERT_TRUE(router.client.roundtrip(req, &via_router));
  ASSERT_TRUE(inproc.client.roundtrip(req, &via_inproc));
  ASSERT_EQ(sfield(via_router, "event"), "result") << via_router;
  EXPECT_EQ(sfield(via_router, "converged"), "true") << via_router;
  EXPECT_EQ(via_router, via_inproc);

  // The router connection still serves traffic afterwards.
  std::string reply;
  ASSERT_TRUE(router.client.roundtrip("{\"op\": \"ping\", \"id\": \"p\"}", &reply));
  EXPECT_EQ(sfield(reply, "event"), "pong");
}

TEST(ShardService, ShardRequestValidation) {
  struct Case {
    const char* line;
    const char* needle;
  };
  const Case cases[] = {
      {"{\"op\": \"solve\", \"id\": \"a\", \"ranks\": 0}", "ranks"},
      {"{\"op\": \"solve\", \"id\": \"a\", \"ranks\": 9}", "ranks"},
      {"{\"op\": \"solve\", \"id\": \"a\", \"ranks\": 2, \"format\": \"sell\"}",
       "csr"},
      {"{\"op\": \"solve\", \"id\": \"a\", \"ranks\": 2, \"solver\": \"gmres\"}",
       "cg"},
      {"{\"op\": \"solve\", \"id\": \"a\", \"ranks\": 2, \"precond\": \"blockjacobi\"}",
       "precond"},
      {"{\"op\": \"solve\", \"id\": \"a\", \"return_x\": true}", "ranks"},
      {"{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 2, \"ranks\": 2}",
       "solve_batch"},
      {"{\"op\": \"shard_solve\", \"id\": \"a\", \"ranks\": 2, \"rank\": 2}",
       "rank"},
      {"{\"op\": \"shard_solve\", \"id\": \"a\", \"rank\": 0}", "ranks"},
      {"{\"op\": \"shard_msg\", \"id\": \"a\", \"from\": 0}", "body"},
  };
  for (const Case& c : cases) {
    const ParsedRequest p = parse_request(c.line);
    EXPECT_FALSE(p.ok) << c.line;
    EXPECT_EQ(p.code, "bad_request") << c.line;
    EXPECT_NE(p.message.find(c.needle), std::string::npos)
        << c.line << " -> " << p.message;
  }
  // A shard_msg with no matching in-flight shard_solve is refused politely
  // and the connection survives.
  ShardLiveServer live({}, "msg");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"shard_msg\", \"id\": \"ghost\", \"from\": 1, \"body\": \"ctl;t=0\"}",
      &reply));
  EXPECT_EQ(sfield(reply, "event"), "error") << reply;
  EXPECT_EQ(sfield(reply, "code"), "bad_request") << reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"ok\"}", &reply));
  EXPECT_EQ(sfield(reply, "event"), "pong");
}

}  // namespace
}  // namespace feir::service
