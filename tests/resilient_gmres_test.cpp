// Tests of the resilient GMRES (§3.1.3): Arnoldi-vector recovery from the
// Hessenberg redundancy, iterate recovery mid-cycle, and convergence parity
// with the fault-free run.
#include <gtest/gtest.h>

#include "core/resilient_gmres.hpp"
#include "precond/blockjacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

struct Harness {
  TestbedProblem p;
  ResilientGmresOptions opts;
  std::vector<double> x;

  explicit Harness(const std::string& name, double scale = 0.12) {
    p = make_testbed(name, scale);
    opts.block_rows = 64;
    opts.restart = 25;
    opts.tol = 1e-9;
    opts.max_iter = 20000;
  }

  ResilientGmresResult run(const std::vector<std::pair<index_t, std::string>>& plan,
                           std::uint64_t seed = 1) {
    ResilientGmres* solver_ptr = nullptr;
    Rng rng(seed);
    std::size_t next = 0;
    ResilientGmresOptions o = opts;
    o.on_iteration = [&](const IterRecord& rec) {
      while (next < plan.size() && rec.iter == plan[next].first) {
        ProtectedRegion* r = solver_ptr->domain().find(plan[next].second);
        ASSERT_NE(r, nullptr) << plan[next].second;
        const index_t blk = static_cast<index_t>(
            rng.uniform_int(static_cast<std::uint64_t>(r->layout.num_blocks())));
        r->lose_block(blk);
        ++next;
      }
    };
    ResilientGmres solver(p.A, p.b.data(), o);
    solver_ptr = &solver;
    x.assign(static_cast<std::size_t>(p.A.n), 0.0);
    return solver.solve(x.data());
  }

  double relres() const {
    return residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n);
  }
};

TEST(ResilientGmres, FaultFreeConverges) {
  Harness h("parabolic_fem");
  const auto r = h.run({});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(h.relres(), 1e-9);
  EXPECT_EQ(r.stats.errors_detected, 0u);
}

class BasisLoss : public ::testing::TestWithParam<std::string> {};

TEST_P(BasisLoss, LostVectorIsRebuiltFromHessenberg) {
  Harness ideal("parabolic_fem");
  const auto ri = ideal.run({});
  ASSERT_TRUE(ri.converged);

  Harness h("parabolic_fem");
  const auto r = h.run({{ri.iterations / 2, GetParam()}});
  ASSERT_TRUE(r.converged) << GetParam();
  EXPECT_LE(h.relres(), 1e-9);
  EXPECT_GE(r.stats.errors_detected, 1u);
}

INSTANTIATE_TEST_SUITE_P(Vectors, BasisLoss,
                         ::testing::Values("v0", "v1", "v3", "v10", "x", "g"),
                         [](const auto& info) { return info.param; });

TEST(ResilientGmres, ArnoldiRecoveryIsExact) {
  // Direct check of the recurrence: rebuild a v_l page and compare to the
  // original values.
  Harness h("qa8fm", 0.2);
  ResilientGmres* sp = nullptr;
  std::vector<double> snapshot;
  index_t lost_block = 2;
  bool done = false;
  h.opts.on_iteration = [&](const IterRecord& rec) {
    if (rec.iter == 6 && !done) {
      ProtectedRegion* r = sp->domain().find("v2");
      ASSERT_NE(r, nullptr);
      // Snapshot the block, then lose it; the solver must rebuild it.
      const auto& lay = r->layout;
      lost_block = std::min<index_t>(lost_block, lay.num_blocks() - 1);
      snapshot.assign(r->base + lay.begin(lost_block), r->base + lay.end(lost_block));
      r->lose_block(lost_block);
      done = true;
    }
  };
  ResilientGmres solver(h.p.A, h.p.b.data(), h.opts);
  sp = &solver;
  std::vector<double> x(static_cast<std::size_t>(h.p.A.n), 0.0);
  const auto r = solver.solve(x.data());
  ASSERT_TRUE(done);
  ASSERT_TRUE(r.converged);

  // After the solve the region holds the *recovered* values of that cycle;
  // exactness is attested by unchanged convergence plus recovery counters.
  EXPECT_GE(r.stats.spmv_recomputes, 1u);
  EXPECT_LE(residual_norm(h.p.A, x.data(), h.p.b.data()) /
                norm2(h.p.b.data(), h.p.A.n),
            1e-9);
}

TEST(ResilientGmres, ConvergenceParityWithSingleLoss) {
  Harness ideal("qa8fm");
  const auto ri = ideal.run({});
  ASSERT_TRUE(ri.converged);
  Harness h("qa8fm");
  const auto r = h.run({{ri.iterations / 3, "v1"}});
  ASSERT_TRUE(r.converged);
  // Arnoldi recovery is exact: at most one extra restart cycle of slack.
  EXPECT_LE(r.iterations, ri.iterations + h.opts.restart);
}

class PrecondBasisLoss : public ::testing::TestWithParam<std::string> {};

TEST_P(PrecondBasisLoss, PreconditionedCycleSurvivesLosses) {
  // Listing 7: left-preconditioned GMRES; basis recovery re-applies M
  // partially on the lost rows; z recovers from g by partial application.
  // (Matrix choice: restarted GMRES stagnates on the thermal2/Dubcova3
  // stand-ins even fault-free — verified identical in the reference solver —
  // so the parabolic problem is used here.)
  TestbedProblem prob = make_testbed("parabolic_fem", 0.12);
  BlockJacobi M(prob.A, BlockLayout(prob.A.n, 64));

  ResilientGmresOptions opts;
  opts.block_rows = 64;
  opts.restart = 30;
  opts.tol = 1e-9;
  opts.max_iter = 20000;

  ResilientGmres* sp = nullptr;
  Rng rng(11);
  bool injected = false;
  const std::string target = GetParam();
  opts.on_iteration = [&](const IterRecord& rec) {
    if (!injected && rec.iter == 8) {
      ProtectedRegion* r = sp->domain().find(target);
      ASSERT_NE(r, nullptr) << target;
      r->lose_block(static_cast<index_t>(
          rng.uniform_int(static_cast<std::uint64_t>(r->layout.num_blocks()))));
      injected = true;
    }
  };
  ResilientGmres solver(prob.A, prob.b.data(), opts, &M);
  sp = &solver;
  std::vector<double> x(static_cast<std::size_t>(prob.A.n), 0.0);
  const auto r = solver.solve(x.data());
  ASSERT_TRUE(r.converged) << target;
  EXPECT_LE(residual_norm(prob.A, x.data(), prob.b.data()) /
                norm2(prob.b.data(), prob.A.n),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(Vectors, PrecondBasisLoss,
                         ::testing::Values("v0", "v2", "v6", "x", "g", "z"),
                         [](const auto& info) { return info.param; });

TEST(ResilientGmres, ManyLossesAcrossCycles) {
  Harness ideal("ecology2");
  const auto ri = ideal.run({});
  Harness h("ecology2");
  std::vector<std::pair<index_t, std::string>> plan;
  const char* vecs[] = {"v0", "v2", "v5", "x", "g"};
  for (index_t k = 3; k + 2 < ri.iterations && plan.size() < 10;
       k += std::max<index_t>(ri.iterations / 10, 1))
    plan.emplace_back(k, vecs[plan.size() % 5]);
  const auto r = h.run(plan, 23);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(h.relres(), 1e-9);
}

}  // namespace
}  // namespace feir
