// Shared randomized matrix families for the sparse property suites
// (sparse_backend_test, spmm_test): pathological shapes that stress sliced
// storage — banded, stencil, power-law rows, empty rows, single-column — plus
// a vector generator that mixes ±0.0 and subnormal-adjacent values so
// bit-compatibility claims are tested where FP identities break.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace feir::testmat {

enum Family {
  kBanded = 0,
  kStencil,
  kPowerLaw,
  kEmptyRows,
  kSingleColumn,
  kFamilies,
  // Families past kFamilies are opt-in: the long-standing suites draw
  // `seed % kFamilies`, and widening that corpus would silently change what
  // 200-matrix properties they pinned.  The precision tier includes these
  // explicitly.
  kGradedDiagonal = kFamilies,
};

inline const char* family_name(int f) {
  switch (f) {
    case kBanded: return "banded";
    case kStencil: return "stencil";
    case kPowerLaw: return "power-law";
    case kEmptyRows: return "empty-rows";
    case kSingleColumn: return "single-column";
    case kGradedDiagonal: return "graded-diagonal";
  }
  return "?";
}

inline CsrMatrix random_matrix(Rng& rng, int family) {
  const index_t n = 1 + static_cast<index_t>(rng.uniform_int(160));
  std::vector<Triplet> ts;
  switch (family) {
    case kBanded: {
      const index_t bw = static_cast<index_t>(rng.uniform_int(9));
      for (index_t i = 0; i < n; ++i)
        for (index_t j = std::max<index_t>(0, i - bw);
             j < std::min(n, i + bw + 1); ++j)
          ts.push_back({i, j, rng.uniform(-2, 2)});
      break;
    }
    case kStencil: {
      // 2D 5-point pattern with randomized values (keeps the regular-stride
      // columns SELL slices like best).
      const index_t e = 1 + static_cast<index_t>(rng.uniform_int(12));
      const index_t m = e * e;
      for (index_t i = 0; i < m; ++i) {
        const index_t x = i % e, y = i / e;
        ts.push_back({i, i, 4.0 + rng.uniform(0, 1)});
        if (x > 0) ts.push_back({i, i - 1, rng.uniform(-1, 0)});
        if (x + 1 < e) ts.push_back({i, i + 1, rng.uniform(-1, 0)});
        if (y > 0) ts.push_back({i, i - e, rng.uniform(-1, 0)});
        if (y + 1 < e) ts.push_back({i, i + e, rng.uniform(-1, 0)});
      }
      return CsrMatrix::from_triplets(m, std::move(ts));
    }
    case kPowerLaw: {
      // Row i gets ~n/(i+1) entries: a few very long rows, a long tail of
      // short ones — the worst case for ELL-style padding.
      for (index_t i = 0; i < n; ++i) {
        const index_t k = std::max<index_t>(1, n / (i + 1));
        for (index_t e = 0; e < k; ++e)
          ts.push_back({i, static_cast<index_t>(rng.uniform_int(static_cast<int>(n))),
                        rng.uniform(-1, 1)});
      }
      break;
    }
    case kEmptyRows: {
      // ~40% of rows stay empty, including (often) the trailing ones.
      for (index_t i = 0; i < n; ++i) {
        if (rng.uniform(0, 1) < 0.4) continue;
        const index_t k = 1 + static_cast<index_t>(rng.uniform_int(5));
        for (index_t e = 0; e < k; ++e)
          ts.push_back({i, static_cast<index_t>(rng.uniform_int(static_cast<int>(n))),
                        rng.uniform(-1, 1)});
      }
      break;
    }
    case kSingleColumn: {
      // Every row hits the same column (maximal gather conflict), a sparse
      // diagonal on top.
      const index_t c = static_cast<index_t>(rng.uniform_int(static_cast<int>(n)));
      for (index_t i = 0; i < n; ++i) {
        ts.push_back({i, c, rng.uniform(-3, 3)});
        if (rng.uniform(0, 1) < 0.5) ts.push_back({i, i, rng.uniform(-1, 1)});
      }
      break;
    }
    case kGradedDiagonal: {
      // SPD and deliberately ill-conditioned: a tridiagonal whose diagonal
      // grows geometrically by up to ~1e8 across the rows (κ(A) up to ~1e8,
      // past fp32's 2^24 but inside fp64's reach), with weak off-diagonal
      // coupling that keeps diagonal dominance.  Exercises the precision
      // tier where fp32 forward-error bounds are loose and a naive fp32
      // *solver* would stall — the mixed path must still converge to fp64
      // tolerance because only the preconditioner application is fp32.
      const double decades = 2.0 + rng.uniform(0, 6);  // κ up to ~1e8
      const double growth =
          n > 1 ? std::pow(10.0, decades / static_cast<double>(n - 1)) : 1.0;
      double d = 1.0;
      for (index_t i = 0; i < n; ++i) {
        ts.push_back({i, i, d * (1.0 + rng.uniform(0, 0.1))});
        if (i + 1 < n) {
          const double c = -0.1 * d * rng.uniform(0, 1);
          ts.push_back({i, i + 1, c});
          ts.push_back({i + 1, i, c});
        }
        d *= growth;
      }
      break;
    }
    default: break;
  }
  return CsrMatrix::from_triplets(n, std::move(ts));
}

inline std::vector<double> random_vector(Rng& rng, index_t n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    const double r = rng.uniform(0, 1);
    if (r < 0.05) v = 0.0;
    else if (r < 0.10) v = -0.0;
    else if (r < 0.15) v = rng.uniform(-1, 1) * 1e-300;  // subnormal-adjacent
    else v = rng.uniform(-10, 10);
  }
  return x;
}

inline bool bits_equal(const double* a, const double* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(double)) == 0;
}

}  // namespace feir::testmat
