// Unit tests for src/sparse: CSR construction, SpMV, block operations,
// generators (SPD-ness of every testbed stand-in), and MatrixMarket I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/blockops.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

CsrMatrix tiny() {
  // [ 4 -1  0 ]
  // [-1  4 -1 ]
  // [ 0 -1  4 ]
  return CsrMatrix::from_triplets(
      3, {{0, 0, 4}, {0, 1, -1}, {1, 0, -1}, {1, 1, 4}, {1, 2, -1}, {2, 1, -1}, {2, 2, 4}});
}

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  CsrMatrix A = CsrMatrix::from_triplets(2, {{1, 0, 2.0}, {0, 0, 1.0}, {1, 0, 3.0}});
  EXPECT_EQ(A.nnz(), 2);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 0.0);
}

TEST(Csr, RejectsOutOfRange) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{2, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{0, -1, 1.0}}), std::invalid_argument);
}

TEST(Csr, EmptyRowsGetValidPointers) {
  CsrMatrix A = CsrMatrix::from_triplets(4, {{0, 0, 1.0}, {3, 3, 1.0}});
  EXPECT_EQ(A.row_ptr[1], 1);
  EXPECT_EQ(A.row_ptr[2], 1);
  EXPECT_EQ(A.row_ptr[3], 1);
  EXPECT_EQ(A.row_ptr[4], 2);
}

TEST(Csr, SpmvMatchesManual) {
  CsrMatrix A = tiny();
  const double x[3] = {1, 2, 3};
  double y[3];
  spmv(A, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4 * 1 - 2);
  EXPECT_DOUBLE_EQ(y[1], -1 + 8 - 3);
  EXPECT_DOUBLE_EQ(y[2], -2 + 12);
}

TEST(Csr, SpmvRowsTouchesOnlyRange) {
  CsrMatrix A = tiny();
  const double x[3] = {1, 2, 3};
  double y[3] = {-7, -7, -7};
  spmv_rows(A, 1, 2, x, y);
  EXPECT_DOUBLE_EQ(y[0], -7);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], -7);
}

TEST(Csr, TransposeRoundTrip) {
  CsrMatrix A = CsrMatrix::from_triplets(3, {{0, 1, 2.0}, {2, 0, -1.0}, {1, 1, 5.0}});
  CsrMatrix At = A.transpose();
  EXPECT_DOUBLE_EQ(At.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(At.at(0, 2), -1.0);
  CsrMatrix Att = At.transpose();
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(Att.at(i, j), A.at(i, j));
}

TEST(Csr, SymmetryDetection) {
  EXPECT_TRUE(tiny().is_symmetric());
  CsrMatrix B = CsrMatrix::from_triplets(2, {{0, 1, 1.0}, {1, 0, 2.0}});
  EXPECT_FALSE(B.is_symmetric());
}

TEST(Csr, ResidualNormZeroAtSolution) {
  CsrMatrix A = tiny();
  const double x[3] = {1, 1, 1};
  double b[3];
  spmv(A, x, b);
  EXPECT_NEAR(residual_norm(A, x, b), 0.0, 1e-14);
}

TEST(VecOps, DotAxpyLincomb) {
  const double x[4] = {1, 2, 3, 4};
  double y[4] = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(dot(x, y, 4), 10.0);
  EXPECT_DOUBLE_EQ(dot_range(x, y, 1, 3), 5.0);
  axpy_range(2.0, x, y, 0, 4);
  EXPECT_DOUBLE_EQ(y[3], 9.0);
  double z[4];
  lincomb_range(2.0, x, -1.0, y, z, 0, 4);
  EXPECT_DOUBLE_EQ(z[0], 2.0 - 3.0);
  EXPECT_DOUBLE_EQ(norm2(y, 4), std::sqrt(9.0 + 25.0 + 49.0 + 81.0));
}

// --- Block operations --------------------------------------------------

TEST(BlockOps, ExtractDiagBlockMatchesAt) {
  CsrMatrix A = laplace2d_5pt(8, 8);
  DenseMatrix B = extract_dense_block(A, 16, 32, 16, 32);
  for (index_t i = 0; i < 16; ++i)
    for (index_t j = 0; j < 16; ++j) EXPECT_DOUBLE_EQ(B(i, j), A.at(16 + i, 16 + j));
}

TEST(BlockOps, OffblockPlusDiagEqualsFullProduct) {
  CsrMatrix A = laplace2d_5pt(10, 10);
  Rng rng(1);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> full(100);
  spmv(A, x.data(), full.data());

  const index_t r0 = 30, r1 = 50;
  std::vector<double> off(r1 - r0);
  offblock_product(A, r0, r1, r0, r1, x.data(), off.data());
  DenseMatrix D = extract_dense_block(A, r0, r1, r0, r1);
  std::vector<double> diag(r1 - r0);
  dense_matvec(D, x.data() + r0, diag.data());
  for (index_t i = 0; i < r1 - r0; ++i)
    EXPECT_NEAR(off[static_cast<std::size_t>(i)] + diag[static_cast<std::size_t>(i)],
                full[static_cast<std::size_t>(r0 + i)], 1e-12);
}

TEST(BlockOps, CoupledMatrixMatchesEntries) {
  CsrMatrix A = laplace2d_5pt(8, 8);
  BlockLayout layout(64, 16);
  std::vector<index_t> blocks{0, 2};
  DenseMatrix B = coupled_block_matrix(A, layout, blocks);
  EXPECT_EQ(B.rows(), 32);
  // (row 5, col 5) of the coupled system is A(5, 5); offset 16 maps to row 32.
  EXPECT_DOUBLE_EQ(B(5, 5), A.at(5, 5));
  EXPECT_DOUBLE_EQ(B(20, 20), A.at(36, 36));
  EXPECT_DOUBLE_EQ(B(5, 20), A.at(5, 36));
}

TEST(BlockOps, OffblocksProductExcludesAllListedBlocks) {
  CsrMatrix A = laplace2d_5pt(8, 8);
  BlockLayout layout(64, 16);
  std::vector<index_t> blocks{1, 3};
  Rng rng(2);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> out(32);
  offblocks_product(A, layout, blocks, x.data(), out.data());

  // Manual check for row 16 (first row of block 1).
  double expect = 0.0;
  for (index_t j = 0; j < 64; ++j) {
    const index_t jb = layout.block_of(j);
    if (jb != 1 && jb != 3) expect += A.at(16, j) * x[static_cast<std::size_t>(j)];
  }
  EXPECT_NEAR(out[0], expect, 1e-12);
}

// --- Generators ---------------------------------------------------------

class TestbedSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(TestbedSuite, StandInIsSymmetricWithPositiveDiagonal) {
  TestbedProblem p = make_testbed(GetParam(), 0.25);
  EXPECT_GT(p.A.n, 0);
  EXPECT_TRUE(p.A.is_symmetric(1e-10)) << GetParam();
  for (double d : p.A.diagonal()) EXPECT_GT(d, 0.0);
  // b = A x_true holds by construction.
  EXPECT_NEAR(residual_norm(p.A, p.x_true.data(), p.b.data()), 0.0,
              1e-9 * norm2(p.b.data(), p.A.n) + 1e-9);
}

TEST_P(TestbedSuite, StandInIsPositiveDefiniteBySampling) {
  TestbedProblem p = make_testbed(GetParam(), 0.15);
  Rng rng(42);
  std::vector<double> v(static_cast<std::size_t>(p.A.n)), av(v.size());
  for (int trial = 0; trial < 5; ++trial) {
    for (auto& w : v) w = rng.uniform(-1, 1);
    spmv(p.A, v.data(), av.data());
    EXPECT_GT(dot(v.data(), av.data(), p.A.n), 0.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, TestbedSuite,
                         ::testing::ValuesIn(testbed_names()),
                         [](const auto& info) { return info.param; });

TEST(Generators, UnknownNameThrows) {
  EXPECT_THROW(make_testbed("nope"), std::invalid_argument);
}

TEST(Generators, Stencil27HasExpectedStructure) {
  CsrMatrix A = stencil3d_27pt(4, 4, 4);
  EXPECT_EQ(A.n, 64);
  // Interior node has 27 nonzeros; corner has 8.
  const index_t interior = (1 * 4 + 1) * 4 + 1;
  EXPECT_EQ(A.row_ptr[static_cast<std::size_t>(interior) + 1] -
                A.row_ptr[static_cast<std::size_t>(interior)],
            27);
  EXPECT_EQ(A.row_ptr[1] - A.row_ptr[0], 8);
  EXPECT_DOUBLE_EQ(A.at(interior, interior), 26.0);
}

TEST(Generators, ScaleShrinksProblem) {
  TestbedProblem big = make_testbed("ecology2", 0.3);
  TestbedProblem small = make_testbed("ecology2", 0.15);
  EXPECT_GT(big.A.n, small.A.n);
}

// --- MatrixMarket I/O ----------------------------------------------------

TEST(Mmio, RoundTripGeneral) {
  CsrMatrix A = thermal2d_5pt(6, 6, 0.5, 99);
  std::stringstream ss;
  write_matrix_market(ss, A);
  CsrMatrix B = read_matrix_market(ss);
  ASSERT_EQ(B.n, A.n);
  ASSERT_EQ(B.nnz(), A.nnz());
  for (index_t i = 0; i < A.n; ++i)
    for (index_t k = A.row_ptr[static_cast<std::size_t>(i)];
         k < A.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      EXPECT_NEAR(B.at(i, A.col_idx[static_cast<std::size_t>(k)]),
                  A.vals[static_cast<std::size_t>(k)], 1e-14);
}

TEST(Mmio, ReadsSymmetricExpanded) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 4\n"
     << "1 1 4.0\n2 1 -1.0\n2 2 4.0\n3 3 2.0\n";
  CsrMatrix A = read_matrix_market(ss);
  EXPECT_EQ(A.n, 3);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.0);
  EXPECT_TRUE(A.is_symmetric());
}

TEST(Mmio, RejectsGarbage) {
  std::stringstream s1("not a matrix\n");
  EXPECT_THROW(read_matrix_market(s1), std::runtime_error);
  std::stringstream s2("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(s2), std::runtime_error);
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), std::runtime_error);
}

// Table-driven hardening cases: every malformed input must come back as a
// clean error return (never a crash, never an allocation bomb, never a
// silently wrong matrix), with a diagnostic naming the problem.
TEST(Mmio, MalformedInputsReturnErrorsNotDeaths) {
  struct Case {
    const char* name;
    const char* text;
    const char* err_substr;  // nullptr = must parse successfully
  };
  const Case cases[] = {
      {"empty stream", "", "empty stream"},
      {"garbage banner", "hello world\n3 3 0\n", "unsupported banner"},
      {"wrong object", "%%MatrixMarket vector coordinate real general\n3 3 0\n",
       "unsupported banner"},
      {"array format", "%%MatrixMarket matrix array real general\n3 3\n1\n2\n",
       "coordinate format"},
      {"pattern field", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n",
       "pattern"},
      {"complex field",
       "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 1 1.0 0.0\n",
       "complex"},
      {"skew symmetry",
       "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n",
       "unsupported symmetry"},
      {"banner only", "%%MatrixMarket matrix coordinate real general\n",
       "truncated header"},
      {"comments then EOF",
       "%%MatrixMarket matrix coordinate real general\n% a comment\n% another\n",
       "truncated header"},
      {"malformed size line",
       "%%MatrixMarket matrix coordinate real general\nthree by three\n",
       "malformed size line"},
      {"zero dimension", "%%MatrixMarket matrix coordinate real general\n0 0 0\n",
       "non-positive"},
      {"negative dimension", "%%MatrixMarket matrix coordinate real general\n-3 -3 0\n",
       "non-positive"},
      {"huge dimension",
       "%%MatrixMarket matrix coordinate real general\n9999999999999 9999999999999 1\n",
       "out of range"},
      {"non-square", "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n",
       "square"},
      {"negative nnz", "%%MatrixMarket matrix coordinate real general\n2 2 -1\n",
       "negative entry count"},
      {"nnz beyond capacity", "%%MatrixMarket matrix coordinate real general\n2 2 5\n",
       "exceeds matrix capacity"},
      {"truncated entries",
       "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 1.0\n2 2 1.0\n",
       "truncated entry list"},
      {"row index zero",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
       "out of range"},
      {"col index past n",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 3 1.0\n",
       "out of range"},
      {"symmetric upper entry ok",
       "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 2.0\n2 1 -1.0\n",
       nullptr},
      {"integer field ok",
       "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n2 2 4\n",
       nullptr},
  };
  for (const Case& c : cases) {
    std::stringstream in(c.text);
    CsrMatrix A;
    std::string err;
    const bool ok = read_matrix_market(in, &A, &err);
    if (c.err_substr == nullptr) {
      EXPECT_TRUE(ok) << c.name << ": " << err;
      EXPECT_GT(A.n, 0) << c.name;
    } else {
      EXPECT_FALSE(ok) << c.name;
      EXPECT_NE(err.find(c.err_substr), std::string::npos)
          << c.name << ": got \"" << err << "\"";
      // The legacy throwing interface surfaces the same diagnostic.
      std::stringstream again(c.text);
      EXPECT_THROW(read_matrix_market(again), std::runtime_error) << c.name;
    }
  }
}

}  // namespace
}  // namespace feir
