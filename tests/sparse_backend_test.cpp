// Property-based tests of the pluggable sparse backend (sparse/matrix.hpp):
// for a few hundred randomized matrices across pathological shape families
// (banded, stencil, power-law rows, empty rows, single-column), SELL-C-σ
// SpMV and row-subset SpMV must be BIT-identical to the scalar CSR
// reference for every slice height and sorting window — the contract that
// lets the resilient solvers switch formats without changing one bit of
// their output.  The end-to-end half of that contract is checked too: a
// ResilientCg run with injected DUEs converges to a byte-identical iterate
// under both formats at threads = 1.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "campaign/injection.hpp"
#include "core/resilient_cg.hpp"
#include "core/resilient_gmres.hpp"
#include "matrix_families.hpp"
#include "precond/blockjacobi.hpp"
#include "precond/gs.hpp"
#include "runtime/batch_ops.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "sparse/sell.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

// Matrix families shared with the multi-RHS suite (tests/matrix_families.hpp).
using testmat::bits_equal;
using testmat::family_name;
using testmat::kBanded;
using testmat::kFamilies;
using testmat::random_matrix;
using testmat::random_vector;

// ------------------------------------------------ SpMV bit-compatibility --

TEST(SellProperty, SpmvBitEqualsCsrAcrossShapeFamilies) {
  const index_t slices[] = {1, 2, 4, 8, 16};
  const index_t sigmas[] = {1, 8, 32, 64, 1 << 20};
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 2654435761ULL + 17);
    const int family = static_cast<int>(seed % kFamilies);
    const CsrMatrix A = random_matrix(rng, family);
    const std::vector<double> x = random_vector(rng, A.n);
    std::vector<double> ref(static_cast<std::size_t>(A.n));
    spmv(A, x.data(), ref.data());

    const index_t C = slices[seed % 5];
    const index_t sigma = sigmas[(seed / 5) % 5];
    const SellMatrix S = sell_from_csr(A, C, sigma);
    EXPECT_GE(S.fill(), 1.0);
    std::vector<double> y(static_cast<std::size_t>(A.n), -7.0);
    spmv(S, x.data(), y.data());
    ASSERT_TRUE(bits_equal(ref.data(), y.data(), A.n))
        << family_name(family) << " seed " << seed << " n=" << A.n << " C=" << C
        << " sigma=" << sigma;
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

TEST(SellProperty, RowSubsetSpmvBitEqualsCsrAndTouchesOnlyTheRange) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 977 + 3);
    const int family = static_cast<int>(seed % kFamilies);
    const CsrMatrix A = random_matrix(rng, family);
    const std::vector<double> x = random_vector(rng, A.n);
    const SellMatrix S = sell_from_csr(A, 1 + static_cast<index_t>(seed % 16),
                                       8 * (1 + static_cast<index_t>(seed % 9)));

    // Random subrange, occasionally empty or full.
    index_t r0 = static_cast<index_t>(rng.uniform_int(static_cast<int>(A.n + 1)));
    index_t r1 = static_cast<index_t>(rng.uniform_int(static_cast<int>(A.n + 1)));
    if (r0 > r1) std::swap(r0, r1);
    if (seed % 17 == 0) { r0 = 0; r1 = A.n; }

    std::vector<double> ref(static_cast<std::size_t>(A.n), -7.0);
    std::vector<double> y(static_cast<std::size_t>(A.n), -7.0);
    spmv_rows(A, r0, r1, x.data(), ref.data());
    spmv_rows(S, r0, r1, x.data(), y.data());
    ASSERT_TRUE(bits_equal(ref.data(), y.data(), A.n))
        << family_name(family) << " seed " << seed << " range [" << r0 << ", " << r1
        << ") of " << A.n;
    // Outside rows keep the canary, i.e. the sliced kernel never scatters
    // outside the requested range (the DUE-page addressing guarantee).
    for (index_t i = 0; i < A.n; ++i)
      if (i < r0 || i >= r1) ASSERT_EQ(y[static_cast<std::size_t>(i)], -7.0);
  }
}

TEST(SellProperty, StructureInvariants) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed + 1000);
    const CsrMatrix A = random_matrix(rng, static_cast<int>(seed % kFamilies));
    const SellMatrix S = sell_from_csr(A, 8, 32);
    ASSERT_EQ(S.n, A.n);
    ASSERT_EQ(static_cast<index_t>(S.perm.size()), A.n);
    // perm is a permutation confined to its σ windows; rank inverts it.
    std::vector<char> seen(static_cast<std::size_t>(A.n), 0);
    for (index_t p = 0; p < A.n; ++p) {
      const index_t i = S.perm[static_cast<std::size_t>(p)];
      ASSERT_GE(i, p - p % S.sigma);
      ASSERT_LT(i, std::min(A.n, p - p % S.sigma + S.sigma));
      ASSERT_EQ(S.rank[static_cast<std::size_t>(i)], p);
      seen[static_cast<std::size_t>(i)] = 1;
    }
    for (char c : seen) ASSERT_EQ(c, 1);
    // Stored nonzero counts match CSR's.
    index_t nnz = 0;
    for (index_t l : S.len) nnz += l;
    ASSERT_EQ(nnz, A.nnz());
  }
}

TEST(SellProperty, SignedZeroRowsStayBitExact) {
  // Rows summing to exact zero with ±0.0 values: the padded lanes must be
  // blended out, not accumulated (acc + 0.0 would flip a -0.0).
  CsrMatrix A = CsrMatrix::from_triplets(
      5, {{0, 0, 0.0}, {0, 1, -0.0}, {1, 2, 1.0}, {1, 3, -1.0}, {4, 4, -0.0}});
  const double x[5] = {-1.0, -1.0, 1.0, 1.0, 5.0};
  double ref[5], y[5];
  spmv(A, x, ref);
  const SellMatrix S = sell_from_csr(A, 4, 4);
  spmv(S, x, y);
  EXPECT_TRUE(bits_equal(ref, y, 5));
}

// ------------------------------------------------- dispatch + batch path --

TEST(SparseMatrixDispatch, FormatNamesRoundTrip) {
  SparseFormat f = SparseFormat::Csr;
  EXPECT_TRUE(format_from_name("sell", &f));
  EXPECT_EQ(f, SparseFormat::Sell);
  EXPECT_STREQ(format_name(f), "sell");
  EXPECT_TRUE(format_from_name("csr", &f));
  EXPECT_EQ(f, SparseFormat::Csr);
  EXPECT_FALSE(format_from_name("ellpack", &f));
}

TEST(SparseMatrixDispatch, CsrViewIsImplicitAndSellIsShared) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  SparseMatrix csr_view = p.A;  // implicit
  EXPECT_EQ(csr_view.format(), SparseFormat::Csr);
  EXPECT_EQ(csr_view.sell(), nullptr);
  SparseMatrix sell_view = SparseMatrix::make(p.A, SparseFormat::Sell, 8, 64);
  EXPECT_EQ(sell_view.format(), SparseFormat::Sell);
  ASSERT_NE(sell_view.sell(), nullptr);
  SparseMatrix copy = sell_view;  // cheap: shares the SELL structure
  EXPECT_EQ(copy.sell(), sell_view.sell());
  EXPECT_EQ(&copy.csr(), &p.A);
}

TEST(SparseMatrixDispatch, BatchOpsChunkedSellSpmvIsBitDeterministic) {
  TestbedProblem p = make_testbed("consph", 0.3);
  const SparseMatrix S = SparseMatrix::make(p.A, SparseFormat::Sell, 8, 64);
  Rng rng(5);
  std::vector<double> x = random_vector(rng, p.A.n);
  std::vector<double> ref(static_cast<std::size_t>(p.A.n));
  spmv(p.A, x.data(), ref.data());

  for (unsigned nchunks : {1u, 3u, 7u}) {
    Runtime rt(4);
    TaskBatch tb(rt);
    BatchOps ops(tb, p.A.n, nchunks);
    std::vector<double> y(static_cast<std::size_t>(p.A.n), 0.0);
    ops.spmv(S, x.data(), y.data());
    ops.run();
    EXPECT_TRUE(bits_equal(ref.data(), y.data(), p.A.n)) << nchunks << " chunks";
  }
}

// ---------------------------------------------- Gauss-Seidel block sweeps --

TEST(BlockGaussSeidel, SweepsAreBitIdenticalAcrossFormats) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 77);
    CsrMatrix A = random_matrix(rng, kBanded);
    // Make the diagonal safely dominant so the sweeps are well-defined.
    std::vector<Triplet> extra;
    for (index_t i = 0; i < A.n; ++i) extra.push_back({i, i, 20.0});
    for (index_t i = 0; i < A.n; ++i)
      for (index_t k = A.row_ptr[static_cast<std::size_t>(i)];
           k < A.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        extra.push_back({i, A.col_idx[static_cast<std::size_t>(k)],
                         A.vals[static_cast<std::size_t>(k)]});
    A = CsrMatrix::from_triplets(A.n, std::move(extra));

    const std::vector<double> g = random_vector(rng, A.n);
    std::vector<double> z1(static_cast<std::size_t>(A.n), -1.0);
    std::vector<double> z2(static_cast<std::size_t>(A.n), -1.0);
    const index_t r1 = A.n - A.n / 3;
    const SparseMatrix csr_view = A;
    const SparseMatrix sell_view = SparseMatrix::make(A, SparseFormat::Sell, 4, 16);
    gs_block_sweeps(csr_view, 0, r1, 3, g.data(), z1.data());
    gs_block_sweeps(sell_view, 0, r1, 3, g.data(), z2.data());
    ASSERT_TRUE(bits_equal(z1.data(), z2.data(), A.n)) << "seed " << seed;
    for (index_t i = r1; i < A.n; ++i)
      ASSERT_EQ(z1[static_cast<std::size_t>(i)], -1.0);  // outside rows untouched
  }
}

TEST(BlockGaussSeidel, PartialApplicationReproducesApplyBitForBit) {
  TestbedProblem p = make_testbed("qa8fm", 0.2);
  const BlockLayout layout(p.A.n, 64);
  BlockGaussSeidel M(p.A, layout, 2);
  std::vector<double> g(static_cast<std::size_t>(p.A.n));
  Rng rng(3);
  for (auto& v : g) v = rng.uniform(-1, 1);
  std::vector<double> z_full(g.size(), 0.0), z_part(g.size(), 0.0);
  M.apply(g.data(), z_full.data());
  std::vector<index_t> all;
  for (index_t b = 0; b < layout.num_blocks(); ++b) all.push_back(b);
  M.apply_blocks(all, g.data(), z_part.data());
  EXPECT_TRUE(bits_equal(z_full.data(), z_part.data(), p.A.n));

  // Re-applying one block after wiping it reproduces the same bits -- the
  // §3.2 partial-application property the recovery path relies on.
  const index_t b = layout.num_blocks() / 2;
  for (index_t i = layout.begin(b); i < layout.end(b); ++i)
    z_part[static_cast<std::size_t>(i)] = 1e300;
  M.apply_blocks({b}, g.data(), z_part.data());
  EXPECT_TRUE(bits_equal(z_full.data(), z_part.data(), p.A.n));
}

TEST(BlockGaussSeidel, SweepsReduceTheBlockResidual) {
  TestbedProblem p = make_testbed("ecology2", 0.15);
  const BlockLayout layout(p.A.n, 64);
  BlockGaussSeidel M(p.A, layout, 3);
  std::vector<double> g(static_cast<std::size_t>(p.A.n), 1.0), z(g.size(), 0.0);
  M.apply(g.data(), z.data());
  // || g - A_bb z || must be well below || g || on every block.
  for (index_t b = 0; b < layout.num_blocks(); ++b) {
    const index_t r0 = layout.begin(b), r1 = layout.end(b);
    double rr = 0.0, gg = 0.0;
    for (index_t i = r0; i < r1; ++i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (index_t k = p.A.row_ptr[static_cast<std::size_t>(i)];
           k < p.A.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const index_t j = p.A.col_idx[static_cast<std::size_t>(k)];
        if (j >= r0 && j < r1)
          acc -= p.A.vals[static_cast<std::size_t>(k)] * z[static_cast<std::size_t>(j)];
      }
      rr += acc * acc;
      gg += g[static_cast<std::size_t>(i)] * g[static_cast<std::size_t>(i)];
    }
    EXPECT_LT(rr, 0.25 * gg) << "block " << b;
  }
}

// ------------------------------------------- resilient solve, end to end --

struct CgRun {
  std::vector<double> x;
  index_t iterations = 0;
  bool converged = false;
  std::uint64_t errors = 0;
  RecoveryStats stats;
};

CgRun run_injected_cg(const TestbedProblem& p, SparseFormat format, Method method) {
  ResilientCgOptions opts;
  opts.method = method;
  opts.tol = 1e-9;
  opts.block_rows = 64;
  opts.threads = 1;  // bit-exact replay needs the sequential schedule
  std::unique_ptr<campaign::IterationInjector> inj;
  opts.on_iteration = [&inj](const IterRecord& rec) {
    if (inj) inj->on_iteration(rec.iter);
  };
  const SparseMatrix S = SparseMatrix::make(p.A, format, 8, 64);
  ResilientCg solver(S, p.b.data(), opts);
  inj = std::make_unique<campaign::IterationInjector>(solver.domain(), 25.0, 0xFE17);
  CgRun run;
  run.x.assign(static_cast<std::size_t>(p.A.n), 0.0);
  const ResilientCgResult r = solver.solve(run.x.data());
  run.iterations = r.iterations;
  run.converged = r.converged;
  run.errors = inj->count();
  run.stats = r.stats;
  return run;
}

TEST(FormatParity, ResilientCgWithDuesIsByteIdenticalAcrossFormats) {
  TestbedProblem p = make_testbed("thermal2", 0.12);
  const CgRun csr = run_injected_cg(p, SparseFormat::Csr, Method::Feir);
  const CgRun sell = run_injected_cg(p, SparseFormat::Sell, Method::Feir);

  ASSERT_TRUE(csr.converged);
  ASSERT_TRUE(sell.converged);
  EXPECT_GT(csr.errors, 0u) << "the test must actually inject DUEs";
  EXPECT_EQ(csr.errors, sell.errors);
  EXPECT_EQ(csr.iterations, sell.iterations);
  EXPECT_EQ(csr.stats.spmv_recomputes, sell.stats.spmv_recomputes);
  EXPECT_EQ(csr.stats.diag_solves, sell.stats.diag_solves);
  ASSERT_TRUE(bits_equal(csr.x.data(), sell.x.data(), p.A.n))
      << "solver iterates diverged between formats";
}

TEST(FormatParity, LossyMethodStaysByteIdenticalToo) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  const CgRun csr = run_injected_cg(p, SparseFormat::Csr, Method::Lossy);
  const CgRun sell = run_injected_cg(p, SparseFormat::Sell, Method::Lossy);
  ASSERT_TRUE(csr.converged);
  EXPECT_EQ(csr.iterations, sell.iterations);
  ASSERT_TRUE(bits_equal(csr.x.data(), sell.x.data(), p.A.n));
}

TEST(FormatParity, GmresWithGaussSeidelPrecondSurvivesLossesOnSell) {
  TestbedProblem p = make_testbed("ecology2", 0.15);
  const BlockLayout layout(p.A.n, 64);
  const SparseMatrix S = SparseMatrix::make(p.A, SparseFormat::Sell, 8, 64);
  BlockGaussSeidel M(S, layout, 2);

  ResilientGmresOptions opts;
  opts.tol = 1e-9;
  opts.block_rows = 64;
  opts.restart = 25;
  ResilientGmres* live = nullptr;
  int injected = 0;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (live != nullptr && injected < 3 && rec.iter > 0 && rec.iter % 20 == 0) {
      Rng rng(static_cast<std::uint64_t>(rec.iter));
      auto [region, block] = live->domain().pick_uniform(rng);
      if (region != nullptr) region->lose_block(block);
      ++injected;
    }
  };
  ResilientGmres solver(S, p.b.data(), opts, &M);
  live = &solver;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = solver.solve(x.data());
  EXPECT_GE(injected, 1);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
}

}  // namespace
}  // namespace feir
