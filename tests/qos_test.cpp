// Unit tests for the QoS layer (src/qos/): token bucket, weighted-fair
// queue, tenant grammar, histograms, and the QosManager -- all driven by a
// fake monotonic clock, so every admit/deny sequence and every percentile is
// exactly reproducible.  The per-tenant stats JSON additionally has a golden
// fixture (tests/golden/tenant_stats.json); regenerate it deliberately with
//
//   FEIR_UPDATE_GOLDEN=1 ./qos_test
//
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "qos/fair_queue.hpp"
#include "qos/qos.hpp"
#include "qos/tenant.hpp"
#include "qos/token_bucket.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"

#ifndef FEIR_REPO_DIR
#define FEIR_REPO_DIR "."
#endif

namespace feir::qos {
namespace {

// --- token bucket ------------------------------------------------------------

TEST(TokenBucket, BurstThenDenyThenRefill) {
  // 2 tokens/s, burst 4, starting full at t=0.  Table of (now, want-admit);
  // the trace exercises burst drain, denial at empty, fractional refill, and
  // the burst cap after a long idle gap.
  TokenBucket b(2.0, 4.0, 0.0);
  const struct {
    double now;
    bool want;
  } trace[] = {
      {0.0, true},   // burst: 4 -> 3
      {0.0, true},   // 3 -> 2
      {0.0, true},   // 2 -> 1
      {0.0, true},   // 1 -> 0
      {0.0, false},  // empty
      {0.4, false},  // +0.8 tokens: still < 1
      {0.5, true},   // +0.2 -> 1.0, spend it
      {0.5, false},  // empty again at the same instant
      {100.0, true},  // long idle refills to burst (4), not 199
      {100.0, true},
      {100.0, true},
      {100.0, true},
      {100.0, false},  // exactly the burst, not more
  };
  for (std::size_t i = 0; i < sizeof(trace) / sizeof(trace[0]); ++i)
    EXPECT_EQ(b.try_acquire(trace[i].now), trace[i].want) << "step " << i;
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket b(0.0, 0.0, 0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.try_acquire(0.0));
  EXPECT_EQ(b.level(0.0), -1.0);
}

TEST(TokenBucket, LevelReportsWithoutConsuming) {
  TokenBucket b(1.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(b.level(0.0), 10.0);
  EXPECT_DOUBLE_EQ(b.level(0.0), 10.0);  // idempotent
  EXPECT_TRUE(b.try_acquire(0.0, 7.5));
  EXPECT_DOUBLE_EQ(b.level(0.0), 2.5);
  EXPECT_DOUBLE_EQ(b.level(2.0), 4.5);  // +2 s * 1/s
}

TEST(TokenBucket, StaleNowMeansNoTimePassed) {
  TokenBucket b(1.0, 1.0, 10.0);
  EXPECT_TRUE(b.try_acquire(10.0));
  // A clock that appears to step backwards must not mint tokens.
  EXPECT_FALSE(b.try_acquire(5.0));
  EXPECT_FALSE(b.try_acquire(10.0));
  EXPECT_TRUE(b.try_acquire(11.0));
}

TEST(TokenBucket, FractionalCosts) {
  TokenBucket b(1.0, 1.0, 0.0);
  EXPECT_TRUE(b.try_acquire(0.0, 0.25));
  EXPECT_TRUE(b.try_acquire(0.0, 0.25));
  EXPECT_TRUE(b.try_acquire(0.0, 0.5));
  EXPECT_FALSE(b.try_acquire(0.0, 0.25));
}

// --- weighted-fair queue -----------------------------------------------------

/// Drains the queue, returning the dispatch order as queue indices (items
/// are pushed carrying their queue index).
std::vector<int> drain(WeightedFairQueue<int>& q) {
  std::vector<int> order;
  int item;
  while (q.pop(&item)) order.push_back(item);
  return order;
}

TEST(WeightedFairQueue, SingleQueueIsFifo) {
  WeightedFairQueue<int> q;
  const std::size_t qi = q.add_queue(1.0, 1);
  for (int i = 0; i < 5; ++i) q.push(qi, i);
  int item;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(&item));
    EXPECT_EQ(item, i);
  }
  EXPECT_FALSE(q.pop(&item));
  EXPECT_TRUE(q.empty());
}

TEST(WeightedFairQueue, WeightsShareDispatchProportionally) {
  // Backlogged weight-3 vs weight-1 queues in one lane: over any long window
  // the dispatch ratio is 3:1.  With both fully backlogged up front the
  // exact deterministic order is pinned, not just the ratio.
  WeightedFairQueue<int> q;
  const std::size_t heavy = q.add_queue(3.0, 1);
  const std::size_t light = q.add_queue(1.0, 1);
  for (int i = 0; i < 30; ++i) q.push(heavy, 0);
  for (int i = 0; i < 10; ++i) q.push(light, 1);
  const std::vector<int> order = drain(q);
  ASSERT_EQ(order.size(), 40u);
  // Every prefix of length 4k holds exactly k light dispatches (3:1 pacing).
  int lights = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    lights += order[i];
    if ((i + 1) % 4 == 0)
      EXPECT_EQ(lights, static_cast<int>((i + 1) / 4)) << "after " << i + 1;
  }
  EXPECT_EQ(lights, 10);
}

TEST(WeightedFairQueue, TiesBreakTowardLowerQueueIndex) {
  WeightedFairQueue<int> q;
  const std::size_t a = q.add_queue(1.0, 1);
  const std::size_t b = q.add_queue(1.0, 1);
  q.push(b, 1);
  q.push(a, 0);  // same finish tag (1.0) -- a wins the tie despite pushing later
  EXPECT_EQ(drain(q), (std::vector<int>{0, 1}));
}

TEST(WeightedFairQueue, IdleQueueAccumulatesNoCredit) {
  // Queue a drains alone for a while; when b shows up late it must NOT get
  // a burst of back-to-back dispatches for the time it sat idle (its tag
  // starts at the lane's current virtual time).
  WeightedFairQueue<int> q;
  const std::size_t a = q.add_queue(1.0, 1);
  const std::size_t b = q.add_queue(1.0, 1);
  for (int i = 0; i < 8; ++i) q.push(a, 0);
  int item;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.pop(&item));
  for (int i = 0; i < 4; ++i) {
    q.push(a, 0);
    q.push(b, 1);
  }
  const std::vector<int> order = drain(q);
  // Strict alternation -- b never runs twice in a row.
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    EXPECT_FALSE(order[i] == 1 && order[i + 1] == 1) << "at " << i;
}

TEST(WeightedFairQueue, HigherLanesDrainCompletelyFirst) {
  WeightedFairQueue<int> q;
  const std::size_t high = q.add_queue(1.0, 0);
  const std::size_t normal = q.add_queue(100.0, 1);  // weight cannot cross lanes
  const std::size_t low = q.add_queue(100.0, 2);
  q.push(low, 2);
  q.push(normal, 1);
  q.push(high, 0);
  q.push(high, 0);
  EXPECT_EQ(drain(q), (std::vector<int>{0, 0, 1, 2}));
}

TEST(WeightedFairQueue, ClearDropsItemsKeepsQueues) {
  WeightedFairQueue<int> q;
  const std::size_t qi = q.add_queue(1.0, 1);
  q.push(qi, 7);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.queue_size(qi), 1u);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(qi, 8);
  int item;
  ASSERT_TRUE(q.pop(&item));
  EXPECT_EQ(item, 8);
}

// --- priority <-> lane mapping ----------------------------------------------

TEST(TenantPriority, LanesMatchTheRuntimeMapping) {
  // The WFQ's lane for a tenant priority must agree with where the runtime
  // puts the corresponding submit-priority (runtime/runtime.hpp lane_of:
  // > 0 -> lane 0, == 0 -> lane 1, < 0 -> lane 2), and the queue must have
  // exactly as many lanes as the runtime (3).
  const auto runtime_lane_of = [](int priority) {
    return priority > 0 ? 0 : (priority == 0 ? 1 : 2);
  };
  EXPECT_EQ(kQueueLanes, 3);
  for (const TenantPriority p :
       {TenantPriority::High, TenantPriority::Normal, TenantPriority::Low})
    EXPECT_EQ(lane_for(p), runtime_lane_of(runtime_priority(p)))
        << priority_name(p);
  EXPECT_EQ(lane_for(TenantPriority::High), 0);
  EXPECT_EQ(lane_for(TenantPriority::Normal), 1);
  EXPECT_EQ(lane_for(TenantPriority::Low), 2);
}

TEST(TenantPriority, NamesRoundTrip) {
  for (const TenantPriority p :
       {TenantPriority::High, TenantPriority::Normal, TenantPriority::Low}) {
    TenantPriority back;
    ASSERT_TRUE(priority_from_name(priority_name(p), &back));
    EXPECT_EQ(back, p);
  }
  TenantPriority out;
  EXPECT_FALSE(priority_from_name("", &out));
  EXPECT_FALSE(priority_from_name("High", &out));  // case-sensitive
  EXPECT_FALSE(priority_from_name("urgent", &out));
}

// --- tenant grammar ----------------------------------------------------------

TEST(TenantGrammar, ParsesFullAndPartialSpecs) {
  TenantSpec t;
  std::string err;
  ASSERT_TRUE(parse_tenant_spec("alice:s3cret:4:high:10:20:8", &t, &err)) << err;
  EXPECT_EQ(t.id, "alice");
  EXPECT_EQ(t.key, "s3cret");
  EXPECT_DOUBLE_EQ(t.weight, 4.0);
  EXPECT_EQ(t.priority, TenantPriority::High);
  EXPECT_DOUBLE_EQ(t.rate, 10.0);
  EXPECT_DOUBLE_EQ(t.burst, 20.0);
  EXPECT_EQ(t.max_inflight, 8u);

  // Minimal 4-field form: rate/burst/max_inflight default to unlimited.
  ASSERT_TRUE(parse_tenant_spec("bob:hunter2:1:low", &t, &err)) << err;
  EXPECT_DOUBLE_EQ(t.rate, 0.0);
  EXPECT_DOUBLE_EQ(t.burst, 0.0);
  EXPECT_EQ(t.max_inflight, 0u);

  // Rate without burst: burst defaults to max(1, rate).
  ASSERT_TRUE(parse_tenant_spec("c:k:1:normal:0.5", &t, &err)) << err;
  EXPECT_DOUBLE_EQ(t.burst, 1.0);
  ASSERT_TRUE(parse_tenant_spec("c:k:1:normal:8", &t, &err)) << err;
  EXPECT_DOUBLE_EQ(t.burst, 8.0);
}

TEST(TenantGrammar, RejectionsNameTheOffendingByte) {
  // (spec, expected "byte N:" prefix) table: the offset points at the start
  // of the offending FIELD, so a user can count into their own flag value.
  const struct {
    const char* spec;
    const char* want_prefix;
  } cases[] = {
      {"", "byte 0: expected id"},
      {"alice", "byte 0: expected id"},
      {"alice:key:1", "byte 0: expected id"},
      {"al ice:key:1:high", "byte 0: tenant id may use only"},
      {":key:1:high", "byte 0: tenant id must be 1..64 bytes"},
      {"alice::1:high", "byte 6: key must be 1..128 bytes"},
      {"alice:key:0:high", "byte 10: weight must be a number in (0, 1e6]"},
      {"alice:key:-2:high", "byte 10: weight must be"},
      {"alice:key:nan:high", "byte 10: weight must be"},
      {"alice:key:1:urgent", "byte 12: priority must be high, normal, or low"},
      {"alice:key:1:high:-1", "byte 17: rate must be"},
      {"alice:key:1:high:1:x", "byte 19: burst must be"},
      {"alice:key:1:high:1:1:-3", "byte 21: max_inflight must be"},
      {"alice:key:1:high:1:1:1.5", "byte 21: max_inflight must be"},
      {"a:b:1:high:1:1:1:extra", "byte 17: too many fields"},
  };
  for (const auto& c : cases) {
    TenantSpec t;
    std::string err;
    EXPECT_FALSE(parse_tenant_spec(c.spec, &t, &err)) << c.spec;
    EXPECT_EQ(err.substr(0, std::string(c.want_prefix).size()), c.want_prefix)
        << "spec: " << c.spec << "\n  got: " << err;
  }
}

TEST(TenantGrammar, ConfigFileOffsetsAreAbsolute) {
  // The bad weight sits on line 3; its diagnostic must carry the byte offset
  // within the whole file, not within the line.
  const std::string text =
      "# tenants\n"
      "alice:s3cret:4:high\n"
      "bob:hunter2:bad:low\n";
  std::vector<TenantSpec> out;
  std::string err;
  EXPECT_FALSE(parse_tenant_config(text, &out, &err));
  // "bob:hunter2:" starts at byte 30; the weight field 12 bytes later.
  EXPECT_EQ(err.substr(0, 8), "byte 42:") << err;
  EXPECT_TRUE(out.empty());  // nothing appended on failure
}

TEST(TenantGrammar, ConfigFileCommentsBlanksAndIndent) {
  const std::string text =
      "# comment\n"
      "\n"
      "  alice:s3cret:4:high:10\r\n"
      "\tbob:hunter2:1:low\n"
      "   # indented comment\n";
  std::vector<TenantSpec> out;
  std::string err;
  ASSERT_TRUE(parse_tenant_config(text, &out, &err)) << err;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, "alice");
  EXPECT_EQ(out[1].id, "bob");
}

TEST(TenantGrammar, ConfigFileDuplicateIdRejectedAtSecondOccurrence) {
  const std::string text = "alice:k1:1:high\nalice:k2:1:low\n";
  std::vector<TenantSpec> out;
  std::string err;
  EXPECT_FALSE(parse_tenant_config(text, &out, &err));
  EXPECT_EQ(err.substr(0, 8), "byte 16:") << err;
  EXPECT_NE(err.find("duplicate tenant id"), std::string::npos) << err;
}

TEST(TenantGrammar, ValidateTenantsCatchesCrossSourceDuplicates) {
  std::vector<TenantSpec> tenants;
  std::string err;
  EXPECT_FALSE(validate_tenants(tenants, &err));  // empty set
  TenantSpec a;
  a.id = "alice";
  tenants = {a, a};  // e.g. --tenant flag + --tenant-file line
  EXPECT_FALSE(validate_tenants(tenants, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos);
  tenants = {a};
  EXPECT_TRUE(validate_tenants(tenants, &err));
}

// --- log histogram -----------------------------------------------------------

TEST(LogHistogram, CountsAndExtremes) {
  LogHistogram h(1.0, 1e3, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  h.record(5.0);
  h.record(50.0);
  h.record(0.5);    // underflow
  h.record(5000.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_seen(), 5000.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : h.buckets()) total += c;
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(h.buckets().front(), 1u);  // the 0.5
  EXPECT_EQ(h.buckets().back(), 1u);   // the 5000
}

TEST(LogHistogram, SingleSampleReportsItself) {
  LogHistogram h(1e-2, 1e6, 10);
  h.record(37.25);
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(h.percentile(p), 37.25);
}

TEST(LogHistogram, PercentileTracksExactWithinOneBucket) {
  // Log-uniform-ish spread over 3 decades: the histogram percentile must
  // agree with the exact-sample percentile to within one bucket's relative
  // width (10 buckets/decade => a factor of 10^0.1 ~ 1.26).
  LogHistogram h(1.0, 1e4, 10);
  std::vector<double> xs;
  double v = 1.5;
  for (int i = 0; i < 200; ++i) {
    h.record(v);
    xs.push_back(v);
    v *= 1.034;  // deterministic spread, ~1.5 .. ~1300
  }
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = percentile(xs, p);
    const double approx = h.percentile(p);
    EXPECT_GT(approx, exact / 1.26) << "p" << p;
    EXPECT_LT(approx, exact * 1.26) << "p" << p;
  }
}

TEST(LogHistogram, DeterministicAcrossRuns) {
  LogHistogram a(1e-2, 1e6, 10), b(1e-2, 1e6, 10);
  double v = 0.013;
  for (int i = 0; i < 500; ++i) {
    a.record(v);
    b.record(v);
    v *= 1.021;
  }
  EXPECT_EQ(a.buckets(), b.buckets());
  EXPECT_DOUBLE_EQ(a.percentile(95.0), b.percentile(95.0));
}

// --- QosManager --------------------------------------------------------------

/// A controllable clock handed to QosManager; tests advance it explicitly.
struct FakeClock {
  double t = 0.0;
  QosManager::Clock fn() {
    return [this] { return t; };
  }
};

std::vector<TenantSpec> two_tenants() {
  TenantSpec alice;
  alice.id = "alice";
  alice.key = "s3cret";
  alice.weight = 4.0;
  alice.priority = TenantPriority::High;
  TenantSpec bob;
  bob.id = "bob";
  bob.key = "hunter2";
  bob.priority = TenantPriority::Low;
  bob.rate = 2.0;
  bob.burst = 2.0;
  bob.max_inflight = 1;
  return {alice, bob};
}

TEST(QosManager, AuthenticateResolvesExactPairsOnly) {
  QosManager qos(two_tenants());
  EXPECT_EQ(qos.authenticate("alice", "s3cret"), 0);
  EXPECT_EQ(qos.authenticate("bob", "hunter2"), 1);
  EXPECT_EQ(qos.authenticate("alice", "s3cre"), -1);   // prefix
  EXPECT_EQ(qos.authenticate("alice", "s3cret "), -1); // longer
  EXPECT_EQ(qos.authenticate("alice", "hunter2"), -1); // other tenant's key
  EXPECT_EQ(qos.authenticate("carol", "s3cret"), -1);  // unknown id
  EXPECT_EQ(qos.authenticate("", ""), -1);
}

TEST(QosManager, QuotaCheckedBeforeBucket) {
  FakeClock clk;
  QosManager qos(two_tenants(), clk.fn());
  // bob: rate 2, burst 2, max_inflight 1.
  EXPECT_EQ(qos.try_admit(1), QosManager::Admit::Ok);
  // Quota bounce must NOT burn a token: the bucket still holds one.
  EXPECT_EQ(qos.try_admit(1), QosManager::Admit::QuotaExceeded);
  qos.finish(1, QosManager::Outcome::Completed, 0.001, 10);
  EXPECT_EQ(qos.try_admit(1), QosManager::Admit::Ok);  // the preserved token
  qos.finish(1, QosManager::Outcome::Completed, 0.001, 10);
  EXPECT_EQ(qos.try_admit(1), QosManager::Admit::RateLimited);  // bucket empty
  clk.t = 0.5;  // +1 token at 2/s
  EXPECT_EQ(qos.try_admit(1), QosManager::Admit::Ok);
}

TEST(QosManager, CancelAdmissionUndoesTheAdmit) {
  FakeClock clk;
  QosManager qos(two_tenants(), clk.fn());
  ASSERT_EQ(qos.try_admit(1), QosManager::Admit::Ok);
  qos.cancel_admission(1, /*overloaded=*/true);
  // Inflight released: the quota no longer blocks.
  EXPECT_EQ(qos.try_admit(1), QosManager::Admit::Ok);
}

TEST(QosManager, UnlimitedTenantNeverRejected) {
  FakeClock clk;
  QosManager qos(two_tenants(), clk.fn());
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(qos.try_admit(0), QosManager::Admit::Ok);
}

// --- golden stats JSON -------------------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(FEIR_REPO_DIR) + "/tests/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void expect_matches_golden(const std::string& content, const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("FEIR_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(campaign::write_text_file(path, content)) << path;
    return;
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty()) << "missing fixture " << path
                             << " (regenerate with FEIR_UPDATE_GOLDEN=1)";
  if (content != want) {
    std::size_t at = 0;
    while (at < content.size() && at < want.size() && content[at] == want[at]) ++at;
    FAIL() << name << " drifted from its golden fixture at byte " << at << ":\n  want ..."
           << want.substr(at > 40 ? at - 40 : 0, 80) << "...\n  got  ..."
           << content.substr(at > 40 ? at - 40 : 0, 80) << "...";
  }
}

TEST(QosManager, StatsJsonMatchesGoldenFixture) {
  // A fixed admission/finish trace on the fake clock: the rendered JSON must
  // be byte-stable (sorted tenant keys, fixed field order, %.17g numbers).
  // Declaration order is bob-then-alice to prove the output sorts by id.
  std::vector<TenantSpec> tenants = two_tenants();
  std::swap(tenants[0], tenants[1]);
  FakeClock clk;
  QosManager qos(tenants, clk.fn());
  const int bob = 0, alice = 1;
  ASSERT_EQ(qos.spec(alice).id, "alice");

  ASSERT_EQ(qos.try_admit(alice), QosManager::Admit::Ok);
  ASSERT_EQ(qos.try_admit(bob), QosManager::Admit::Ok);  // tokens 2 -> 1
  ASSERT_EQ(qos.try_admit(bob), QosManager::Admit::QuotaExceeded);
  clk.t = 0.25;
  qos.finish(alice, QosManager::Outcome::Completed, 0.25, 120);
  qos.finish(bob, QosManager::Outcome::DeadlineExpired, 0.125, 40);
  ASSERT_EQ(qos.try_admit(bob), QosManager::Admit::Ok);  // 1.5 -> 0.5
  qos.finish(bob, QosManager::Outcome::Cancelled, 0.0, 0);
  // Quota drained, bucket at 0.5 tokens: now it is the RATE that rejects.
  ASSERT_EQ(qos.try_admit(bob), QosManager::Admit::RateLimited);
  clk.t = 0.5;
  ASSERT_EQ(qos.try_admit(alice), QosManager::Admit::Ok);
  qos.cancel_admission(alice, /*overloaded=*/true);
  clk.t = 1.0;

  const std::string json = qos.stats_json();
  EXPECT_EQ(json, qos.stats_json());  // rendering twice is stable
  expect_matches_golden(json + "\n", "tenant_stats.json");
}

}  // namespace
}  // namespace feir::qos
