// Tests for src/service/net.hpp: the timeout-vs-hangup distinction of
// send_frame_status (a peer that stops reading is NOT the same as a peer
// that went away — a timed-out partial write mis-frames the stream and the
// connection must be poisoned), the thread-safe errno_string, and the
// slow-reader regression at the server level: a client that never drains
// its socket stalls one event write for at most send_timeout_s, gets its
// connection poisoned, and the server keeps serving everyone else.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"

namespace feir::service {
namespace {

struct SocketPair {
  int fd[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~SocketPair() {
    for (int f : fd)
      if (f >= 0) ::close(f);
  }
  void close_peer() {
    ::close(fd[1]);
    fd[1] = -1;
  }
};

/// Shrinks the send buffer and arms SO_SNDTIMEO so a non-draining peer
/// turns into EAGAIN quickly.
void arm_small_timeout(int fd, int timeout_ms) {
  const int sndbuf = 4096;  // kernel clamps to its minimum; small enough
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf), 0);
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv), 0);
}

TEST(Net, SendFrameOkOnADrainingPeer) {
  SocketPair sp;
  bool mid = true;
  EXPECT_EQ(send_frame_status(sp.fd[0], "hello", &mid), SendStatus::kOk);
  EXPECT_FALSE(mid);
  char buf[16] = {};
  ASSERT_EQ(::read(sp.fd[1], buf, sizeof buf), 6);
  EXPECT_EQ(std::string(buf, 6), "hello\n");
  EXPECT_TRUE(send_frame(sp.fd[0], "again"));
}

TEST(Net, TimeoutOnANonReadingPeerReportsMidFrame) {
  SocketPair sp;
  arm_small_timeout(sp.fd[0], 100);
  // Far larger than both socket buffers: the write must stall mid-frame and
  // the expired SO_SNDTIMEO must surface as kTimeout, not kHangup.
  const std::string frame(4 << 20, 'x');
  bool mid = false;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(send_frame_status(sp.fd[0], frame, &mid), SendStatus::kTimeout);
  EXPECT_TRUE(mid) << "bytes were written; the stream is mis-framed";
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::seconds(10)) << "timeout did not bound the stall";
}

TEST(Net, HangupOnAClosedPeer) {
  SocketPair sp;
  sp.close_peer();
  bool mid = true;
  // MSG_NOSIGNAL: this must report kHangup, not deliver SIGPIPE.
  EXPECT_EQ(send_frame_status(sp.fd[0], "gone", &mid), SendStatus::kHangup);
  EXPECT_FALSE(mid) << "nothing of the frame was accepted";
  EXPECT_FALSE(send_frame(sp.fd[0], "still gone"));
}

TEST(Net, ErrnoStringIsDescriptiveAndThreadSafe) {
  errno = ENOENT;
  const std::string s = errno_string("open");
  EXPECT_EQ(s.rfind("open: ", 0), 0u) << s;
  EXPECT_GT(s.size(), std::string("open: ").size());

  // Hammer it from several threads with different errnos (errno is
  // thread-local; strerror_r keeps the message buffers private) and check
  // every result is intact.
  std::vector<std::thread> threads;
  std::vector<std::string> out(8);
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([i, &out] {
      const int errs[] = {EPIPE, ECONNRESET, EAGAIN, ENOENT};
      for (int k = 0; k < 2000; ++k) {
        errno = errs[(i + k) % 4];
        out[static_cast<std::size_t>(i)] = errno_string("send");
      }
    });
  for (auto& t : threads) t.join();
  for (const std::string& s2 : out) {
    EXPECT_EQ(s2.rfind("send: ", 0), 0u) << s2;
    EXPECT_GT(s2.size(), std::string("send: ").size()) << s2;
  }
}

// --------------------------------------------- slow-reader regression ----

std::string nfield(const std::string& line, const char* key) {
  JsonValue v;
  std::string err;
  if (!json_parse(line, &v, &err)) return "<unparseable>";
  const JsonValue* f = v.find(key);
  if (f == nullptr) return "";
  if (f->is_string()) return f->string;
  if (f->is_bool()) return f->boolean ? "true" : "false";
  return "";
}

TEST(Net, SlowReaderIsPoisonedAndTheServerKeepsServing) {
  ServerOptions opts;
  opts.unix_path = "/tmp/feir_net_test_slow_" + std::to_string(::getpid()) + ".sock";
  opts.workers = 2;
  opts.send_timeout_s = 0.2;  // poison a stalled connection fast
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  // The slow reader: a raw socket (so we control its buffers and never read
  // from it) requesting a streaming solve, whose many progress events fill
  // the server's send side quickly.
  const int slow_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(slow_fd, 0);
  {
    const int rcvbuf = 4096;
    ::setsockopt(slow_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(opts.unix_path.size(), sizeof addr.sun_path);
    std::memcpy(addr.sun_path, opts.unix_path.c_str(), opts.unix_path.size() + 1);
    ASSERT_EQ(::connect(slow_fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof addr),
              0)
        << errno_string("connect");
  }
  // An endless solve: its progress stream (plus the pong replies below) fills
  // the kernel buffers toward the never-reading client, so a blocking event
  // write must eventually hit the send timeout and poison the connection.
  const std::string slow_req =
      "{\"op\": \"solve\", \"id\": \"slow\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"tol\": 1e-300, \"max_iter\": 1000000000,"
      " \"stream\": true}\n";
  ASSERT_EQ(::send(slow_fd, slow_req.data(), slow_req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(slow_req.size()));

  // Keep requesting pongs without ever reading one.  Once the buffers are
  // full, the server's blocking pong write stalls for send_timeout_s, the
  // connection is poisoned and shut down, and our sends start failing.
  const std::string ping = "{\"op\": \"ping\", \"id\": \"p\"}\n";
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool poisoned = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n =
        ::send(slow_fd, ping.data(), ping.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      poisoned = true;  // EPIPE/ECONNRESET: the server shut the socket down
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(poisoned) << "server never poisoned the non-reading connection";

  // From the slow client's side the stream ends in EOF (or reset), never a
  // silent wedge.
  std::vector<char> sink(1 << 16);
  bool eof = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(slow_fd, sink.data(), sink.size(), 0);
    if (n <= 0) {
      eof = true;
      break;
    }
  }
  EXPECT_TRUE(eof);
  ::close(slow_fd);

  // And the server kept serving everyone else: the poisoned connection's
  // solve was cancelled when its reader unwound, freeing the worker, and a
  // well-behaved client completes normally.
  Client good;
  ASSERT_TRUE(good.connect_unix(opts.unix_path, &err)) << err;
  std::string reply;
  ASSERT_TRUE(good.roundtrip(
      "{\"op\": \"solve\", \"id\": \"g\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"tol\": 1e-8}",
      &reply));
  EXPECT_EQ(nfield(reply, "event"), "result") << reply;
  EXPECT_EQ(nfield(reply, "converged"), "true") << reply;
  server.stop();
}

}  // namespace
}  // namespace feir::service
