// Golden-file determinism tests for the campaign reports: the JSON and CSV
// emitted for a fixed campaign seed must stay BYTE-stable across repeated
// runs, across executor thread counts, and across code changes — a report
// regression fails here instead of silently drifting.  Fixtures live in
// tests/golden/; regenerate them deliberately with
//
//   FEIR_UPDATE_GOLDEN=1 ./golden_report_test
//
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/aggregate.hpp"
#include "campaign/executor.hpp"
#include "campaign/jobspec.hpp"
#include "campaign/report.hpp"

#ifndef FEIR_REPO_DIR
#define FEIR_REPO_DIR "."
#endif

namespace feir::campaign {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(FEIR_REPO_DIR) + "/tests/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool update_mode() { return std::getenv("FEIR_UPDATE_GOLDEN") != nullptr; }

/// Compares `content` against the named fixture byte-for-byte (or rewrites
/// the fixture in update mode).
void expect_matches_golden(const std::string& content, const std::string& name) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    ASSERT_TRUE(write_text_file(path, content)) << path;
    return;
  }
  const std::string want = read_file(path);
  ASSERT_FALSE(want.empty()) << "missing fixture " << path
                             << " (regenerate with FEIR_UPDATE_GOLDEN=1)";
  if (content != want) {
    // Pinpoint the first divergence; a full dump would be unreadable.
    std::size_t at = 0;
    while (at < content.size() && at < want.size() && content[at] == want[at]) ++at;
    FAIL() << name << " drifted from its golden fixture at byte " << at << ":\n  want ..."
           << want.substr(at > 40 ? at - 40 : 0, 80) << "...\n  got  ..."
           << content.substr(at > 40 ? at - 40 : 0, 80) << "...";
  }
}

/// The fixed campaign behind the fixtures: small, fast, and covering both CG
/// methods and a BiCGStab job under deterministic iteration-space injection.
GridSpec golden_grid() {
  GridSpec g;
  g.matrices = {"ecology2"};
  g.solvers = {SolverKind::Cg, SolverKind::Bicgstab};
  g.methods = {Method::Feir, Method::Afeir};
  g.preconds = {PrecondKind::None};
  Injection inj;
  inj.kind = InjectionKind::IterationMtbe;
  inj.mean_iters = 40.0;
  g.injections = {inj};
  g.replicas = 2;
  g.campaign_seed = 20260730;
  g.scale = 0.12;
  g.tol = 1e-8;
  g.max_iter = 20000;
  g.block_rows = 64;
  g.threads = 1;
  return g;
}

CampaignResult run_golden(unsigned concurrency) {
  CampaignExecutor ex({.concurrency = concurrency, .pin_threads = false,
                       .on_job_done = {}});
  return ex.run(expand_grid(golden_grid()));
}

TEST(GoldenReport, CampaignJsonMatchesFixture) {
  const CampaignResult res = run_golden(2);
  for (const JobResult& r : res.results) ASSERT_TRUE(r.ran) << r.error;
  const std::string json =
      campaign_json(res, aggregate(res), golden_grid().campaign_seed, /*timing=*/false);
  expect_matches_golden(json, "campaign_small.json");
}

TEST(GoldenReport, CampaignCsvsMatchFixtures) {
  const CampaignResult res = run_golden(2);
  const auto cells = aggregate(res);
  expect_matches_golden(cells_csv(cells, /*timing=*/false), "campaign_small_cells.csv");
  expect_matches_golden(jobs_csv(res, /*timing=*/false), "campaign_small_jobs.csv");
}

TEST(GoldenReport, ReportIsByteStableAcrossExecutorThreadCounts) {
  // Concurrency only reorders job completion; the report must not notice.
  const CampaignResult r1 = run_golden(1);
  const CampaignResult r4 = run_golden(4);
  const std::uint64_t seed = golden_grid().campaign_seed;
  EXPECT_EQ(campaign_json(r1, aggregate(r1), seed, false),
            campaign_json(r4, aggregate(r4), seed, false));
  EXPECT_EQ(jobs_csv(r1, false), jobs_csv(r4, false));
  EXPECT_EQ(cells_csv(aggregate(r1), false), cells_csv(aggregate(r4), false));
}

TEST(GoldenReport, SellBackendReproducesTheCsrFixtureModuloFormatField) {
  // The storage backend must not leak into any measured quantity: the same
  // campaign on SELL differs from the CSR golden only in the format field.
  GridSpec g = golden_grid();
  g.format = SparseFormat::Sell;
  CampaignExecutor ex({.concurrency = 2, .pin_threads = false, .on_job_done = {}});
  const CampaignResult res = ex.run(expand_grid(g));
  std::string json = campaign_json(res, aggregate(res), g.campaign_seed, false);
  std::size_t pos = 0;
  int swapped = 0;
  const std::string from = "\"format\": \"sell\"", to = "\"format\": \"csr\"";
  while ((pos = json.find(from, pos)) != std::string::npos) {
    json.replace(pos, from.size(), to);
    ++swapped;
  }
  EXPECT_GT(swapped, 0);
  if (update_mode()) return;  // fixture just rewritten by the JSON test
  EXPECT_EQ(json, read_file(golden_path("campaign_small.json")));
}

TEST(GoldenReport, PrecisionAxisCampaignMatchesFixtureAndLabelsOnlyFp32) {
  // A mixed-precision sweep on the golden base: CG under FEIR/AFEIR with a
  // Jacobi preconditioner at fp64 and fp32.  The fp32 rows carry an explicit
  // precision field/column; the fp64 rows must stay byte-identical to what
  // they looked like before the axis existed (default-precision runs are
  // emitted with no precision label at all).
  GridSpec g = golden_grid();
  g.solvers = {SolverKind::Cg};
  g.preconds = {PrecondKind::Jacobi};
  g.precisions = {Precision::Fp64, Precision::Fp32};
  CampaignExecutor ex({.concurrency = 2, .pin_threads = false, .on_job_done = {}});
  const CampaignResult res = ex.run(expand_grid(g));
  for (const JobResult& r : res.results) ASSERT_TRUE(r.ran) << r.error;
  const auto cells = aggregate(res);
  const std::string json = campaign_json(res, cells, g.campaign_seed, false);

  // Exactly the fp32 half of the jobs is labelled.
  std::size_t labelled = 0, pos = 0;
  while ((pos = json.find("\"precision\": \"fp32\"", pos)) != std::string::npos) {
    ++labelled;
    pos += 1;
  }
  EXPECT_EQ(labelled, expand_grid(g).size() / 2);
  EXPECT_EQ(json.find("\"precision\": \"fp64\""), std::string::npos);

  expect_matches_golden(json, "campaign_precision.json");
  expect_matches_golden(cells_csv(cells, false), "campaign_precision_cells.csv");
  expect_matches_golden(jobs_csv(res, false), "campaign_precision_jobs.csv");
}

TEST(GoldenReport, SingleJobRecordSchemaIsFrozen) {
  // A synthetic record (no solver run) freezes the record schema itself:
  // key order, float formatting, escaping.
  JobSpec spec;
  spec.index = 3;
  spec.matrix = "ecology2";
  spec.scale = 0.25;
  spec.solver = SolverKind::Cg;
  spec.method = Method::Afeir;
  spec.precond = PrecondKind::GaussSeidel;
  spec.format = SparseFormat::Sell;
  spec.inject.kind = InjectionKind::IterationMtbe;
  spec.inject.mean_iters = 150.0;
  spec.replica = 1;
  spec.seed = 0xDEADBEEFull;
  spec.tol = 1e-10;
  spec.block_rows = 512;
  spec.threads = 1;
  JobResult r;
  r.ran = true;
  r.converged = true;
  r.iterations = 1234;
  r.final_relres = 8.76e-11;
  r.errors_injected = 7;
  r.stats.spmv_recomputes = 5;
  r.stats.diag_solves = 2;
  expect_matches_golden(job_record_json(spec, r, /*timing=*/false) + "\n",
                        "job_record.json");
}

}  // namespace
}  // namespace feir::campaign
