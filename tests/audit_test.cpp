// Canary tests for the analysis subsystem: every violation class the graph
// auditor, footprint sentinel, and halo audit exist to catch is exercised
// with a deliberately broken input and pinned to the right diagnostic --
// plus the negative space: clean graphs stay clean, audited solver runs are
// byte-identical to unaudited ones, and the by-design AFEIR recovery
// footprints do not trip the audit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "analysis/footprint.hpp"
#include "analysis/graph_audit.hpp"
#include "analysis/halo_audit.hpp"
#include "core/resilient_cg.hpp"
#include "distsim/partition.hpp"
#include "runtime/batch_ops.hpp"
#include "runtime/runtime.hpp"
#include "sparse/generators.hpp"

namespace feir {
namespace {

using analysis::AuditTask;
using analysis::GraphSpec;
using analysis::Violation;

AuditTask task(const char* name, std::vector<Dep> deps,
               std::vector<std::size_t> preds = {}) {
  AuditTask t;
  t.name = name;
  t.deps = std::move(deps);
  t.preds = std::move(preds);
  return t;
}

// --- pure graph-audit canaries ---------------------------------------------

TEST(GraphAudit, MissingRawEdgeIsAnUnorderedWriteReadConflict) {
  double p = 0.0;
  GraphSpec g;
  g.tasks.push_back(task("producer", {out(&p)}));
  g.tasks.push_back(task("consumer", {in(&p)}));  // no edge: the bug
  const std::vector<Violation> vs = analysis::audit_graph(g);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].a, 0u);
  EXPECT_EQ(vs[0].b, 1u);
  EXPECT_EQ(vs[0].key.base, static_cast<const void*>(&p));
  const std::string msg = analysis::format_violation(g, vs[0]);
  EXPECT_NE(msg.find("W/R"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'producer'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'consumer'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no dependency path"), std::string::npos) << msg;
}

TEST(GraphAudit, UnorderedSiblingWritersAreAWWConflict) {
  double p = 0.0;
  GraphSpec g;
  g.tasks.push_back(task("left", {out(&p)}));
  g.tasks.push_back(task("right", {out(&p)}));
  const std::vector<Violation> vs = analysis::audit_graph(g);
  ASSERT_EQ(vs.size(), 1u);
  const std::string msg = analysis::format_violation(g, vs[0]);
  EXPECT_NE(msg.find("W/W"), std::string::npos) << msg;
}

TEST(GraphAudit, DirectEdgeOrdersTheConflict) {
  double p = 0.0;
  GraphSpec g;
  g.tasks.push_back(task("producer", {out(&p)}));
  g.tasks.push_back(task("consumer", {in(&p)}, {0}));
  EXPECT_TRUE(analysis::audit_graph(g).empty());
}

TEST(GraphAudit, TransitivePathOrdersTheConflict) {
  double p = 0.0, q = 0.0;
  GraphSpec g;
  g.tasks.push_back(task("a", {out(&p)}));
  g.tasks.push_back(task("b", {in(&p), out(&q)}, {0}));
  g.tasks.push_back(task("c", {in(&q), inout(&p)}, {1}));  // a -> b -> c covers p
  EXPECT_TRUE(analysis::audit_graph(g).empty());
}

TEST(GraphAudit, ReadersNeverConflictWithEachOther) {
  double p = 0.0;
  GraphSpec g;
  g.tasks.push_back(task("r1", {in(&p)}));
  g.tasks.push_back(task("r2", {in(&p)}));
  EXPECT_TRUE(analysis::audit_graph(g).empty());
}

TEST(GraphAudit, DistinctChunkKeysOnTheSameBaseDoNotConflict) {
  double v[2] = {0.0, 0.0};
  GraphSpec g;
  g.tasks.push_back(task("c0", {out(v, 0)}));
  g.tasks.push_back(task("c1", {out(v, 1)}));
  EXPECT_TRUE(analysis::audit_graph(g).empty());
}

TEST(GraphAudit, ForwardPredIndexThrows) {
  double p = 0.0;
  GraphSpec g;
  g.tasks.push_back(task("a", {out(&p)}, {1}));  // pred >= own index
  g.tasks.push_back(task("b", {in(&p)}));
  EXPECT_THROW(analysis::audit_graph(g), std::invalid_argument);
}

TEST(GraphAudit, DefaultOverrideRoundTrips) {
  const bool before = analysis::audit_default();
  analysis::set_audit_default(true);
  EXPECT_TRUE(analysis::audit_default());
  Runtime rt(1);  // ctor snapshots the default
  EXPECT_TRUE(rt.audit_enabled());
  analysis::set_audit_default(false);
  EXPECT_FALSE(analysis::audit_default());
  EXPECT_TRUE(rt.audit_enabled());  // snapshot, not live
  analysis::set_audit_default(before);
}

// --- in-scheduler audit (the edge-dropper canary seam) ----------------------

void publish_with_dropped_edge() {
  Runtime rt(2);
  rt.set_audit(true);
  rt.set_audit_edge_dropper_for_testing(
      [](const std::string& pred, const std::string& succ) {
        return pred == "q" && succ == "dot";
      });
  double p = 0.0;
  double s = 0.0;
  TaskBatch batch(rt);
  batch.add([&] { p = 2.0; }, {out(&p)}, 0, "q");
  batch.add([&] { s = p; }, {in(&p), out(&s)}, 0, "dot");
  batch.submit();
  rt.taskwait();
}

TEST(GraphAuditDeathTest, DroppedRawEdgeAborts) {
  // A scheduler that loses the q -> dot RAW edge is exactly the bug class
  // the audit covers; the test seam simulates it on an otherwise healthy
  // runtime and the publish must abort with both task names.  Threadsafe
  // style: the child re-execs, so the parent's worker threads cannot leak
  // into the forked death-test process.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(publish_with_dropped_edge(), "FEIR graph audit.*'q'.*'dot'");
}

TEST(GraphAuditDeathTest, HealthySchedulerSurvivesTheSameGraph) {
  Runtime rt(2);
  rt.set_audit(true);
  double p = 0.0, s = 0.0;
  TaskBatch batch(rt);
  batch.add([&] { p = 2.0; }, {out(&p)}, 0, "q");
  batch.add([&] { s = p; }, {in(&p), out(&s)}, 0, "dot");
  batch.submit();
  rt.taskwait();
  EXPECT_EQ(s, 2.0);
}

// --- footprint sentinel ------------------------------------------------------

TEST(FootprintSentinel, UnderDeclaredChunkIsReported) {
  analysis::FootprintSentinel s(100, 4);  // chunks: [0,25) [25,50) [50,75) [75,100)
  double y[100] = {};
  const std::size_t t = s.add_task("spmv", {Dep{{y, 0}, Access::Out}});
  s.touch_write(t, y, 0, 50);  // writes chunk 1 too: under-declared
  const std::vector<std::string> vs = s.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_NE(vs[0].find("under-declared footprint"), std::string::npos) << vs[0];
  EXPECT_NE(vs[0].find("'spmv'"), std::string::npos) << vs[0];
  EXPECT_NE(vs[0].find("row 25"), std::string::npos) << vs[0];  // coverage stops at 25
  EXPECT_THROW(s.check(), analysis::AuditError);
}

TEST(FootprintSentinel, DeclaredCoverageAcceptsOutOfOrderChunks) {
  analysis::FootprintSentinel s(100, 4);
  double y[100] = {};
  const std::size_t t = s.add_task("full", {Dep{{y, 2}, Access::Out},
                                            Dep{{y, 0}, Access::Out},
                                            Dep{{y, 3}, Access::Out},
                                            Dep{{y, 1}, Access::Out}});
  s.touch_write(t, y, 0, 100);
  EXPECT_TRUE(s.violations().empty());
  EXPECT_NO_THROW(s.check());
}

TEST(FootprintSentinel, ReadDeclarationDoesNotLicenseWrites) {
  analysis::FootprintSentinel s(100, 4);
  double y[100] = {};
  const std::size_t t = s.add_task("map", {Dep{{y, 0}, Access::In}});
  s.touch_write(t, y, 0, 25);  // mode mismatch: In covers reads only
  EXPECT_EQ(s.violations().size(), 1u);
}

TEST(FootprintSentinel, ScalarAnchorsAreCheckedPerElement) {
  analysis::FootprintSentinel s(100, 4);
  double scale[3] = {};
  // The pre-fix axpy_cols_at shape: one anchor on scale[0] only.
  const std::size_t t = s.add_task("axpyk", {in(&scale[0])});
  s.touch_scalar_read(t, &scale[0]);
  s.touch_scalar_read(t, &scale[1]);
  s.touch_scalar_read(t, &scale[2]);
  const std::vector<std::string> vs = s.violations();
  EXPECT_EQ(vs.size(), 2u);  // scale[1] and scale[2] undeclared
  for (const std::string& v : vs)
    EXPECT_NE(v.find("declares no in/inout dep"), std::string::npos) << v;
}

TEST(FootprintSentinel, BatchOpsRunsCleanUnderTheSentinel) {
  // End-to-end: every builtin BatchOps op staged under an auditing runtime
  // passes its own sentinel -- including axpy_cols_at chained on dot_cols,
  // the shape whose missing per-lane scale anchors this PR fixed.
  Runtime rt(4);
  rt.set_audit(true);
  const index_t n = 97, k = 3;
  std::vector<double> X(static_cast<std::size_t>(n * k)), Y(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) {
    X[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    Y[i] = 0.125 * static_cast<double>(i % 29) - 1.5;
  }
  double scale[3] = {};
  TaskBatch batch(rt);
  BatchOps ops(batch, n, 5);
  ASSERT_NE(ops.sentinel(), nullptr);
  ops.dot_cols(X.data(), Y.data(), k, scale);
  ops.axpy_cols_at(scale, -1.0, X.data(), Y.data(), k);
  EXPECT_NO_THROW(ops.run());
  for (index_t j = 0; j < k; ++j) EXPECT_NE(scale[j], 0.0);
}

TEST(FootprintSentinel, SentinelIsOffWhenAuditingIsOff) {
  Runtime rt(2);
  // Force off even when the whole suite runs under FEIR_AUDIT_GRAPH=1 (the
  // CI graph-audit job): what's under test is the off-path, not the env.
  rt.set_audit(false);
  TaskBatch batch(rt);
  BatchOps ops(batch, 64, 4);
  EXPECT_EQ(ops.sentinel(), nullptr);
}

// --- audited == unaudited bit-determinism ------------------------------------

TEST(AuditDeterminism, AuditedSolveIsByteIdenticalToUnaudited) {
  const TestbedProblem p = make_testbed("ecology2", 0.12);
  ResilientCgOptions opts;
  opts.method = Method::Feir;
  opts.threads = 4;
  opts.tol = 1e-8;
  opts.max_iter = 5000;

  std::vector<double> x_plain(static_cast<std::size_t>(p.A.n), 0.0);
  std::vector<double> x_audited(x_plain);

  ResilientCg plain(p.A, p.b.data(), opts);
  const ResilientCgResult r1 = plain.solve(x_plain.data());

  opts.audit = true;
  ResilientCg audited(p.A, p.b.data(), opts);
  const ResilientCgResult r2 = audited.solve(x_audited.data());

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(0, std::memcmp(x_plain.data(), x_audited.data(),
                           x_plain.size() * sizeof(double)));
}

// --- sharded halo audit ------------------------------------------------------

TEST(HaloAudit, CompletePlanHasNoGaps) {
  const TestbedProblem p = make_testbed("ecology2", 0.12);
  const std::vector<index_t> slabs = {0, p.A.n / 2, p.A.n};
  const ExchangePlan plan = build_exchange_plan(p.A, slabs);
  EXPECT_TRUE(analysis::audit_halo_coverage(p.A, plan, 0).empty());
  EXPECT_TRUE(analysis::audit_halo_coverage(p.A, plan, 1).empty());
}

TEST(HaloAudit, DroppedRecvListIsReported) {
  const TestbedProblem p = make_testbed("ecology2", 0.12);
  const std::vector<index_t> slabs = {0, p.A.n / 2, p.A.n};
  ExchangePlan plan = build_exchange_plan(p.A, slabs);
  ASSERT_FALSE(plan.recv[0].empty());
  plan.recv[0].clear();  // rank 0 "forgets" its ghost rows: the bug
  const std::vector<std::string> gaps = analysis::audit_halo_coverage(p.A, plan, 0);
  ASSERT_FALSE(gaps.empty());
  EXPECT_NE(gaps[0].find("halo audit"), std::string::npos) << gaps[0];
  EXPECT_NE(gaps[0].find("no peer sends it"), std::string::npos) << gaps[0];
  // Rank 1's plan is untouched and still audits clean.
  EXPECT_TRUE(analysis::audit_halo_coverage(p.A, plan, 1).empty());
}

TEST(HaloAudit, BadRankIsItselfAFinding) {
  const TestbedProblem p = make_testbed("ecology2", 0.12);
  const std::vector<index_t> one_slab = {0, p.A.n};
  const ExchangePlan plan = build_exchange_plan(p.A, one_slab);
  EXPECT_FALSE(analysis::audit_halo_coverage(p.A, plan, 7).empty());
}

}  // namespace
}  // namespace feir
