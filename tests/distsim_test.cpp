// Tests of the scaling substrate: row partitions, halo plans, the machine
// model, and the qualitative Fig.-5 properties of the simulator.
#include <gtest/gtest.h>

#include "distsim/machine.hpp"
#include "distsim/partition.hpp"
#include "distsim/simulator.hpp"
#include "sparse/generators.hpp"

namespace feir {
namespace {

TEST(RowPartition, CoversAllRowsContiguously) {
  RowPartition part(1000, 7);
  index_t covered = 0;
  for (index_t r = 0; r < 7; ++r) {
    EXPECT_EQ(part.begin(r), covered);
    covered = part.end(r);
    EXPECT_GT(part.rows(r), 0);
  }
  EXPECT_EQ(covered, 1000);
}

TEST(RowPartition, OwnerInvertsBegin) {
  RowPartition part(977, 13);
  for (index_t i = 0; i < 977; i += 11) {
    const index_t r = part.owner(i);
    EXPECT_GE(i, part.begin(r));
    EXPECT_LT(i, part.end(r));
  }
}

TEST(HaloPlan, StencilNeighboursOnly) {
  // A 3D stencil slab-partitioned: each rank talks to at most 2 peers.
  const index_t edge = 12;
  CsrMatrix A = stencil3d_27pt(edge, edge, edge);
  RowPartition part(A.n, 6);
  HaloPlan plan = build_halo_plan(A, part);
  EXPECT_LE(plan.max_degree, 2);
  EXPECT_GT(plan.max_recv, 0);
  // Every rank's actual halo volume tracks the shared slab formula (one
  // ghost plane per side) — the same slab_ghost_rows the machine model uses,
  // not a re-derived copy of it.
  const index_t plane = edge * edge;
  for (index_t r = 0; r < 6; ++r) {
    index_t total = 0;
    for (const auto& [peer, cnt] : plan.recv_counts[static_cast<std::size_t>(r)]) {
      EXPECT_TRUE(peer == r - 1 || peer == r + 1);
      EXPECT_LE(cnt, slab_ghost_rows(part, r, peer, plane));
      total += cnt;
    }
    const auto expect = static_cast<double>(slab_halo_volume(part, r, plane));
    EXPECT_NEAR(static_cast<double>(total), expect, 0.5 * expect);
  }
}

TEST(MachineModel, AllreduceGrowsLogarithmically) {
  MachineModel m;
  EXPECT_EQ(m.allreduce(1), 0.0);
  const double a8 = m.allreduce(8);
  const double a64 = m.allreduce(64);
  EXPECT_GT(a64, a8);
  EXPECT_NEAR(a64 / a8, 2.0, 0.01);  // log2(64)/log2(8) = 2
}

TEST(MachineModel, CalibrationProducesSaneRates) {
  MachineModel m = calibrate_machine(1 << 15);
  EXPECT_GT(m.spmv_nnz_per_s, 1e7);
  EXPECT_LT(m.spmv_nnz_per_s, 1e12);
  EXPECT_GT(m.stream_doubles_per_s, 1e7);
}

TEST(IterationCost, GeneralAndAnalyticAgreeOnStencil) {
  MachineModel m;  // defaults, no calibration needed for a ratio check
  const index_t edge = 16;
  CsrMatrix A = stencil3d_27pt(edge, edge, edge);
  RowPartition part(A.n, 4);
  HaloPlan plan = build_halo_plan(A, part);
  const IterationCost general = iteration_cost(m, A, part, plan);
  const IterationCost analytic = stencil_iteration_cost(m, edge, 4);
  EXPECT_NEAR(general.spmv_s / analytic.spmv_s, 1.0, 0.35);
  EXPECT_NEAR(general.halo_s / analytic.halo_s, 1.0, 0.6);
}

TEST(Simulator, IdealScalesUntilCommunicationDominates) {
  MachineModel m;
  const double t8 = stencil_iteration_cost(m, 256, 8).total();
  const double t64 = stencil_iteration_cost(m, 256, 64).total();
  EXPECT_GT(t8 / t64, 4.0);  // decent strong scaling at low rank counts
  // At absurd rank counts the reduce/halo floor shows: efficiency drops.
  const double t4096 = stencil_iteration_cost(m, 256, 4096).total();
  EXPECT_LT((t8 / t4096) / 512.0, 1.0);
}

TEST(Simulator, FeirErrorCostIsSmall) {
  MachineModel m;
  ScalingConfig cfg;
  cfg.grid_edge = 256;
  cfg.ranks = 16;
  cfg.method = Method::Feir;
  cfg.errors_per_run = 1;
  const ScalingResult r = simulate_run(cfg, m, 100, 100);
  EXPECT_LT(r.seconds, r.ideal_seconds * 1.25);
  EXPECT_GT(r.seconds, r.ideal_seconds);  // but not free
}

TEST(Simulator, CheckpointCostsMoreThanFeir) {
  MachineModel m;
  ScalingConfig cfg;
  cfg.grid_edge = 256;
  cfg.ranks = 16;
  cfg.errors_per_run = 1;
  cfg.method = Method::Feir;
  const double feir_s = simulate_run(cfg, m, 100, 100).seconds;
  cfg.method = Method::Checkpoint;
  const double ckpt_s = simulate_run(cfg, m, 100, 100).seconds;
  EXPECT_GT(ckpt_s, feir_s);
}

TEST(Simulator, AfeirBeatsFeirAtLowErrorRate) {
  MachineModel m;
  ScalingConfig cfg;
  cfg.grid_edge = 512;
  cfg.ranks = 64;
  cfg.errors_per_run = 1;
  cfg.method = Method::Afeir;
  const double afeir_s = simulate_run(cfg, m, 60, 60).seconds;
  cfg.method = Method::Feir;
  const double feir_s = simulate_run(cfg, m, 60, 60).seconds;
  EXPECT_LT(afeir_s, feir_s);
}

TEST(ScalingStudy, ProducesPaperShapedSpeedups) {
  // Small measurement problem to keep the test quick.
  ScalingStudy study(/*grid_edge=*/256, /*measure_edge=*/16, /*tol=*/1e-8);

  const double ideal8 = study.speedup(Method::Ideal, 8, 8, 0);
  EXPECT_NEAR(ideal8, 1.0, 1e-9);

  const double ideal64 = study.speedup(Method::Ideal, 64, 8, 0);
  EXPECT_GT(ideal64, 3.0);  // scaling happens
  EXPECT_LT(ideal64, 8.5);  // but not superlinear

  // With one error, FEIR/AFEIR stay close to ideal; checkpoint falls behind.
  const double feir = study.speedup(Method::Feir, 64, 8, 1);
  const double afeir = study.speedup(Method::Afeir, 64, 8, 1);
  const double ckpt = study.speedup(Method::Checkpoint, 64, 8, 1);
  EXPECT_GT(feir, 0.5 * ideal64);
  EXPECT_GT(afeir, 0.5 * ideal64);
  EXPECT_LT(ckpt, feir);
}

}  // namespace
}  // namespace feir
