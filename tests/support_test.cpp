// Unit tests for src/support: page buffers, RNG, stats, layout, tables.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "support/env.hpp"
#include "support/layout.hpp"
#include "support/page_buffer.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace feir {
namespace {

TEST(PageBuffer, AllocatesZeroFilledAndPageAligned) {
  PageBuffer buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(buf.pages(), 2u);  // 1000 doubles = 8000 B -> 2 pages
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kPageBytes, 0u);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(buf.data()[i], 0.0);
}

TEST(PageBuffer, RemapPageDropsContentOfThatPageOnly) {
  PageBuffer buf(2 * kDoublesPerPage);
  for (std::size_t i = 0; i < buf.size(); ++i) buf.data()[i] = static_cast<double>(i + 1);
  buf.remap_page(0);
  for (std::size_t i = 0; i < kDoublesPerPage; ++i) EXPECT_EQ(buf.data()[i], 0.0);
  for (std::size_t i = kDoublesPerPage; i < 2 * kDoublesPerPage; ++i)
    EXPECT_EQ(buf.data()[i], static_cast<double>(i + 1));
}

TEST(PageBuffer, MoveTransfersOwnership) {
  PageBuffer a(kDoublesPerPage);
  a.data()[0] = 42.0;
  PageBuffer b(std::move(a));
  EXPECT_EQ(b.data()[0], 42.0);
  EXPECT_EQ(a.data(), nullptr);
  PageBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data()[0], 42.0);
}

TEST(PageBuffer, PageAddressesAreSequential) {
  PageBuffer buf(3 * kDoublesPerPage);
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_EQ(buf.page_address(p),
              reinterpret_cast<char*>(buf.data()) + p * kPageBytes);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int N = 100000;
  for (int i = 0; i < N; ++i) ++counts[r.uniform_int(10)];
  for (int c : counts) {
    EXPECT_GT(c, N / 10 - N / 50);
    EXPECT_LT(c, N / 10 + N / 50);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(5);
  double s = 0.0;
  const int N = 200000;
  for (int i = 0; i < N; ++i) s += r.exponential(2.5);
  EXPECT_NEAR(s / N, 2.5, 0.05);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng r(9);
  double s = 0.0, s2 = 0.0;
  const int N = 200000;
  for (int i = 0; i < N; ++i) {
    const double x = r.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / N, 0.0, 0.02);
  EXPECT_NEAR(s2 / N, 1.0, 0.03);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944487, 1e-9);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, HarmonicMean) {
  std::vector<double> xs{1.0, 4.0, 4.0};
  EXPECT_NEAR(harmonic_mean(xs), 3.0 / (1.0 + 0.25 + 0.25), 1e-12);
  // Non-positive entries are clamped, not fatal.
  EXPECT_GT(harmonic_mean({0.0, 1.0}), 0.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(BlockLayout, PartitionsExactly) {
  BlockLayout l(1000, 512);
  EXPECT_EQ(l.num_blocks(), 2);
  EXPECT_EQ(l.begin(0), 0);
  EXPECT_EQ(l.end(0), 512);
  EXPECT_EQ(l.rows(1), 488);
  EXPECT_EQ(l.block_of(511), 0);
  EXPECT_EQ(l.block_of(512), 1);
}

TEST(BlockLayout, CoversEveryRowOnce) {
  BlockLayout l(777, 64);
  index_t covered = 0;
  for (index_t b = 0; b < l.num_blocks(); ++b) {
    EXPECT_EQ(l.begin(b), covered);
    covered = l.end(b);
    for (index_t i = l.begin(b); i < l.end(b); ++i) EXPECT_EQ(l.block_of(i), b);
  }
  EXPECT_EQ(covered, 777);
}

TEST(EnvHelpers, ParseAndFallback) {
  setenv("FEIR_TEST_LONG", "42", 1);
  setenv("FEIR_TEST_DBL", "2.5", 1);
  setenv("FEIR_TEST_BAD", "xyz", 1);
  EXPECT_EQ(env_long("FEIR_TEST_LONG", 7), 42);
  EXPECT_EQ(env_long("FEIR_TEST_MISSING_XX", 7), 7);
  EXPECT_EQ(env_long("FEIR_TEST_BAD", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("FEIR_TEST_DBL", 1.0), 2.5);
  EXPECT_EQ(env_string("FEIR_TEST_LONG", ""), "42");
  unsetenv("FEIR_TEST_LONG");
  unsetenv("FEIR_TEST_DBL");
  unsetenv("FEIR_TEST_BAD");
}

TEST(Env, DefaultThreadsHonoursFeirThreads) {
  unsetenv("FEIR_THREADS");
  const unsigned base = default_threads();
  EXPECT_GE(base, 1u);
  EXPECT_LE(base, 8u);
  setenv("FEIR_THREADS", "3", 1);
  EXPECT_EQ(default_threads(), 3u);
  setenv("FEIR_THREADS", "0", 1);  // non-positive falls back
  EXPECT_EQ(default_threads(), base);
  unsetenv("FEIR_THREADS");
}

TEST(Table, FormatsAlignedColumns) {
  Table t;
  t.header({"method", "overhead"});
  t.row({"AFEIR", Table::pct(0.23)});
  t.row({"FEIR", Table::pct(2.73)});
  const std::string s = t.str();
  EXPECT_NE(s.find("AFEIR"), std::string::npos);
  EXPECT_NE(s.find("0.23%"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, NumPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

}  // namespace
}  // namespace feir
