// Tests of the resilient BiCGStab (§3.1.2): convergence under page losses in
// each protected vector, exactness relative to the fault-free run, and the
// Lossy fallback path for unrecoverable losses.
#include <gtest/gtest.h>

#include "core/resilient_bicgstab.hpp"
#include "precond/blockjacobi.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

struct Harness {
  TestbedProblem p;
  ResilientBicgstabOptions opts;
  std::vector<double> x;

  explicit Harness(const std::string& name, double scale = 0.12) {
    p = make_testbed(name, scale);
    opts.block_rows = 64;
    opts.tol = 1e-10;
    opts.max_iter = 20000;
  }

  ResilientBicgstabResult run(const std::vector<std::pair<index_t, std::string>>& plan,
                              std::uint64_t seed = 1) {
    ResilientBicgstab* solver_ptr = nullptr;
    Rng rng(seed);
    std::size_t next = 0;
    ResilientBicgstabOptions o = opts;
    o.on_iteration = [&](const IterRecord& rec) {
      while (next < plan.size() && rec.iter == plan[next].first) {
        ProtectedRegion* r = solver_ptr->domain().find(plan[next].second);
        ASSERT_NE(r, nullptr) << plan[next].second;
        const index_t blk = static_cast<index_t>(
            rng.uniform_int(static_cast<std::uint64_t>(r->layout.num_blocks())));
        r->lose_block(blk);
        ++next;
      }
    };
    ResilientBicgstab solver(p.A, p.b.data(), o);
    solver_ptr = &solver;
    x.assign(static_cast<std::size_t>(p.A.n), 0.0);
    return solver.solve(x.data());
  }

  double relres() const { return residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n); }
};

TEST(ResilientBicgstab, FaultFreeMatchesPlainConvergence) {
  Harness h("ecology2");
  const auto r = h.run({});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(h.relres(), 1e-10);
  EXPECT_EQ(r.stats.errors_detected, 0u);
}

class VectorLoss : public ::testing::TestWithParam<std::string> {};

TEST_P(VectorLoss, SingleLossIsRecoveredAndConverges) {
  Harness ideal("thermal2");
  const auto ri = ideal.run({});
  ASSERT_TRUE(ri.converged);

  Harness h("thermal2");
  const auto r = h.run({{ri.iterations / 2, GetParam()}});
  ASSERT_TRUE(r.converged) << GetParam();
  EXPECT_LE(h.relres(), 1e-10);
  EXPECT_GE(r.stats.errors_detected, 1u);
  // Either an in-place exact recovery happened, or the Lossy fallback ran.
  const bool recovered = r.stats.lincomb_recoveries + r.stats.diag_solves +
                             r.stats.spmv_recomputes + r.stats.residual_recomputes +
                             r.stats.x_recoveries + r.stats.overwritten_losses >
                         0;
  EXPECT_TRUE(recovered || r.stats.restarts > 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Vectors, VectorLoss,
                         ::testing::Values("x", "g", "q", "s", "t", "d0", "d1"),
                         [](const auto& info) { return info.param; });

TEST(ResilientBicgstab, ExactRecoveryPreservesIterationCount) {
  Harness ideal("ecology2");
  const auto ri = ideal.run({});
  ASSERT_TRUE(ri.converged);

  // q is recoverable exactly (recompute A d): no convergence penalty.
  Harness h("ecology2");
  const auto r = h.run({{ri.iterations / 2, "q"}});
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, ri.iterations + ri.iterations / 10 + 4);
}

TEST(ResilientBicgstab, ManyErrorsStillConverge) {
  Harness ideal("ecology2");
  const auto ri = ideal.run({});
  Harness h("ecology2");
  std::vector<std::pair<index_t, std::string>> plan;
  const char* vecs[] = {"x", "g", "q", "s", "t", "d0"};
  for (index_t k = 1; k + 2 < ri.iterations && plan.size() < 12; k += std::max<index_t>(ri.iterations / 12, 1))
    plan.emplace_back(k, vecs[plan.size() % 6]);
  const auto r = h.run(plan, 7);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(h.relres(), 1e-10);
}

class PrecondLoss : public ::testing::TestWithParam<std::string> {};

TEST_P(PrecondLoss, PreconditionedSolveSurvivesLossInEachVector) {
  // Listing 6: block-Jacobi PBiCGStab with a page lost in every protected
  // vector, including the preconditioned ones (p = M^{-1}d, u = M^{-1}s).
  TestbedProblem prob = make_testbed("Dubcova3", 0.12);
  BlockJacobi M(prob.A, BlockLayout(prob.A.n, 64));

  ResilientBicgstabOptions opts;
  opts.block_rows = 64;
  opts.tol = 1e-9;
  opts.max_iter = 20000;

  ResilientBicgstab* sp = nullptr;
  Rng rng(5);
  bool injected = false;
  const std::string target = GetParam();
  opts.on_iteration = [&](const IterRecord& rec) {
    if (!injected && rec.iter == 5) {
      ProtectedRegion* r = sp->domain().find(target);
      ASSERT_NE(r, nullptr) << target;
      r->lose_block(static_cast<index_t>(
          rng.uniform_int(static_cast<std::uint64_t>(r->layout.num_blocks()))));
      injected = true;
    }
  };
  ResilientBicgstab solver(prob.A, prob.b.data(), opts, &M);
  sp = &solver;
  std::vector<double> x(static_cast<std::size_t>(prob.A.n), 0.0);
  const auto r = solver.solve(x.data());
  ASSERT_TRUE(r.converged) << target;
  EXPECT_LE(residual_norm(prob.A, x.data(), prob.b.data()) /
                norm2(prob.b.data(), prob.A.n),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(Vectors, PrecondLoss,
                         ::testing::Values("x", "g", "q", "s", "t", "d0", "p", "u"),
                         [](const auto& info) { return info.param; });

TEST(ResilientBicgstab, PreconditionedFaultFreeMatchesPlain) {
  TestbedProblem prob = make_testbed("ecology2", 0.12);
  BlockJacobi M(prob.A, BlockLayout(prob.A.n, 64));
  ResilientBicgstabOptions opts;
  opts.block_rows = 64;
  opts.tol = 1e-10;
  ResilientBicgstab pre(prob.A, prob.b.data(), opts, &M);
  ResilientBicgstab plain(prob.A, prob.b.data(), opts);
  std::vector<double> x1(static_cast<std::size_t>(prob.A.n), 0.0), x2 = x1;
  const auto rp = pre.solve(x1.data());
  const auto rn = plain.solve(x2.data());
  ASSERT_TRUE(rp.converged);
  ASSERT_TRUE(rn.converged);
  EXPECT_LE(rp.iterations, rn.iterations + 5);  // block-Jacobi should help
}

TEST(ResilientBicgstab, NonSymmetricSystemWithLosses) {
  // Build a mildly nonsymmetric system; diagonal blocks stay SPD-ish enough
  // for the direct solves.
  CsrMatrix L = laplace2d_5pt(18, 18);
  std::vector<Triplet> ts;
  for (index_t i = 0; i < L.n; ++i)
    for (index_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      ts.push_back({i, L.col_idx[static_cast<std::size_t>(k)],
                    L.vals[static_cast<std::size_t>(k)]});
  for (index_t i = 0; i + 1 < L.n; ++i) {
    ts.push_back({i, i + 1, 0.2});
    ts.push_back({i + 1, i, -0.2});
  }
  CsrMatrix A = CsrMatrix::from_triplets(L.n, std::move(ts));

  std::vector<double> x_true(static_cast<std::size_t>(A.n), 1.0), b(x_true.size());
  spmv(A, x_true.data(), b.data());

  ResilientBicgstabOptions opts;
  opts.block_rows = 54;
  opts.tol = 1e-9;
  ResilientBicgstab* sp = nullptr;
  bool injected = false;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (rec.iter == 4 && !injected) {
      sp->domain().find("q")->lose_block(2);
      injected = true;
    }
  };
  ResilientBicgstab solver(A, b.data(), opts);
  sp = &solver;
  std::vector<double> x(x_true.size(), 0.0);
  const auto r = solver.solve(x.data());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(A, x.data(), b.data()) / norm2(b.data(), A.n), 1e-9);
}

}  // namespace
}  // namespace feir
