// Soak/conformance tier (ctest label "soak"): a live feir_serve instance
// sustains >= 4 concurrent tenants x >= 250 requests each -- mixed
// {csr,sell} x {feir,afeir} grids with injected DUEs -- with zero failed
// recoveries, and the full response set is byte-stable across a server
// restart at fixed seeds (the service inherits the campaign engine's
// replayability: iteration-space injection + single-threaded solves).
//
// The request mix is deterministic per (client, index), so run 1 and run 2
// build the identical id -> result-line map; any divergence (a timing
// dependence, an uninitialized read, a cache that changes results) fails the
// byte comparison.
#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"

namespace feir::service {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 250;  // 4 x 250 = 1000 per run

/// The deterministic request of tenant `c`, index `i`: alternates format and
/// method, sweeps two matrices and two error rates, derives a unique seed.
std::string request_line(int c, int i) {
  const char* format = (c + i) % 2 == 0 ? "csr" : "sell";
  const char* method = ((c + i) / 2) % 2 == 0 ? "feir" : "afeir";
  const char* matrix = i % 3 == 0 ? "qa8fm" : "ecology2";
  const double scale = i % 3 == 0 ? 0.2 : 0.08;
  const int mtbe = 20 + 15 * ((i + c) % 3);  // 20 / 35 / 50 iterations
  const unsigned long long seed = 1000ull * static_cast<unsigned long long>(c + 1) +
                                  static_cast<unsigned long long>(i);
  std::string id = "c" + std::to_string(c) + "-r" + std::to_string(i);
  return "{\"op\": \"solve\", \"id\": \"" + id + "\", \"matrix\": \"" + matrix +
         "\", \"scale\": " + std::to_string(scale) + ", \"method\": \"" + method +
         "\", \"format\": \"" + format + "\", \"tol\": 1e-8, \"block_rows\": 64" +
         ", \"mtbe_iters\": " + std::to_string(mtbe) +
         ", \"seed\": " + std::to_string(seed) + "}";
}

/// Runs the full campaign against a fresh server; returns id -> result line.
std::map<std::string, std::string> run_soak(const std::string& sock_tag) {
  ServerOptions opts;
  opts.unix_path = "/tmp/feir_soak_" + sock_tag + "_" + std::to_string(::getpid()) +
                   ".sock";
  opts.workers = 4;
  opts.queue_depth = 64;
  Server server(opts);
  std::string err;
  EXPECT_TRUE(server.start(&err)) << err;

  std::map<std::string, std::string> responses;
  std::mutex mu;
  std::vector<std::thread> tenants;
  tenants.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    tenants.emplace_back([c, &opts, &responses, &mu] {
      Client client;
      std::string cerr;
      ASSERT_TRUE(client.connect_unix(opts.unix_path, &cerr)) << cerr;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::string reply;
        ASSERT_TRUE(client.roundtrip(request_line(c, i), &reply))
            << "client " << c << " request " << i;
        std::lock_guard<std::mutex> lk(mu);
        responses["c" + std::to_string(c) + "-r" + std::to_string(i)] =
            std::move(reply);
      }
    });
  }
  for (std::thread& t : tenants) t.join();
  server.stop();
  return responses;
}

TEST(Soak, FourTenantsThousandRequestsZeroFailedRecoveriesByteStable) {
  const std::map<std::string, std::string> run1 = run_soak("run1");
  ASSERT_EQ(run1.size(), static_cast<std::size_t>(kClients * kRequestsPerClient));

  // Every response is a converged result with exact recovery: no
  // unrecoverable pages, no lossy restarts, no rollbacks -- the paper's
  // "DUEs are a non-event" claim under sustained mixed traffic.
  std::uint64_t total_errors = 0;
  std::uint64_t total_recovery_actions = 0;
  for (const auto& [id, line] : run1) {
    JsonValue v;
    std::string jerr;
    ASSERT_TRUE(json_parse(line, &v, &jerr)) << id << ": " << jerr;
    ASSERT_NE(v.find("event"), nullptr) << line;
    ASSERT_EQ(v.find("event")->string, "result") << id << ": " << line;
    EXPECT_TRUE(v.find("converged")->boolean) << id << ": " << line;
    total_errors += static_cast<std::uint64_t>(v.find("errors_injected")->number);
    const JsonValue* stats = v.find("stats");
    ASSERT_NE(stats, nullptr) << line;
    EXPECT_EQ(stats->find("unrecoverable")->number, 0.0) << id << ": " << line;
    EXPECT_EQ(stats->find("restarts")->number, 0.0) << id << ": " << line;
    EXPECT_EQ(stats->find("rollbacks")->number, 0.0) << id << ": " << line;
    total_recovery_actions += static_cast<std::uint64_t>(
        stats->find("spmv_recomputes")->number + stats->find("diag_solves")->number +
        stats->find("x_recoveries")->number +
        stats->find("residual_recomputes")->number +
        stats->find("contrib_recomputes")->number +
        stats->find("lincomb_recoveries")->number +
        stats->find("redo_updates")->number + stats->find("alt_q_recoveries")->number);
  }
  EXPECT_GT(total_errors, 500u) << "the soak must actually exercise DUE recovery";
  EXPECT_GT(total_recovery_actions, 0u);

  // Conformance: an identical campaign against a fresh server instance
  // reproduces every response byte-for-byte.
  const std::map<std::string, std::string> run2 = run_soak("run2");
  ASSERT_EQ(run2.size(), run1.size());
  for (const auto& [id, line] : run1) {
    const auto it = run2.find(id);
    ASSERT_NE(it, run2.end()) << id;
    EXPECT_EQ(line, it->second) << "response for " << id
                                << " must be byte-stable across server restarts";
  }
}

}  // namespace
}  // namespace feir::service
