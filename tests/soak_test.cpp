// Soak/conformance tier (ctest label "soak"): a live feir_serve instance
// sustains >= 4 concurrent tenants x >= 250 requests each -- mixed
// {csr,sell} x {feir,afeir} grids with injected DUEs -- with zero failed
// recoveries, and the full response set is byte-stable across a server
// restart at fixed seeds (the service inherits the campaign engine's
// replayability: iteration-space injection + single-threaded solves).
//
// The request mix is deterministic per (client, index), so run 1 and run 2
// build the identical id -> result-line map; any divergence (a timing
// dependence, an uninitialized read, a cache that changes results) fails the
// byte comparison.
//
// The adversarial tier (Soak.AdversarialTenantMixIsolatesThePoliteTenant)
// turns the QoS layer against a greedy tenant: 10x the polite tenant's
// request rate with DUE injection, on one worker.  Acceptance: the polite
// tenant's p95 stays within 2x of its uncontended p95, its responses are
// byte-identical to the uncontended run, and no request of either tenant
// fails -- rejections are clean rate_limited/quota_exceeded verdicts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "support/stats.hpp"
#include "support/timing.hpp"

namespace feir::service {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 250;  // 4 x 250 = 1000 per run

/// The deterministic request of tenant `c`, index `i`: alternates format and
/// method, sweeps two matrices and two error rates, derives a unique seed.
std::string request_line(int c, int i) {
  const char* format = (c + i) % 2 == 0 ? "csr" : "sell";
  const char* method = ((c + i) / 2) % 2 == 0 ? "feir" : "afeir";
  const char* matrix = i % 3 == 0 ? "qa8fm" : "ecology2";
  const double scale = i % 3 == 0 ? 0.2 : 0.08;
  const int mtbe = 20 + 15 * ((i + c) % 3);  // 20 / 35 / 50 iterations
  const unsigned long long seed = 1000ull * static_cast<unsigned long long>(c + 1) +
                                  static_cast<unsigned long long>(i);
  std::string id = "c" + std::to_string(c) + "-r" + std::to_string(i);
  return "{\"op\": \"solve\", \"id\": \"" + id + "\", \"matrix\": \"" + matrix +
         "\", \"scale\": " + std::to_string(scale) + ", \"method\": \"" + method +
         "\", \"format\": \"" + format + "\", \"tol\": 1e-8, \"block_rows\": 64" +
         ", \"mtbe_iters\": " + std::to_string(mtbe) +
         ", \"seed\": " + std::to_string(seed) + "}";
}

/// Runs the full campaign against a fresh server; returns id -> result line.
std::map<std::string, std::string> run_soak(const std::string& sock_tag) {
  ServerOptions opts;
  opts.unix_path = "/tmp/feir_soak_" + sock_tag + "_" + std::to_string(::getpid()) +
                   ".sock";
  opts.workers = 4;
  opts.queue_depth = 64;
  Server server(opts);
  std::string err;
  EXPECT_TRUE(server.start(&err)) << err;

  std::map<std::string, std::string> responses;
  std::mutex mu;
  std::vector<std::thread> tenants;
  tenants.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    tenants.emplace_back([c, &opts, &responses, &mu] {
      Client client;
      std::string cerr;
      ASSERT_TRUE(client.connect_unix(opts.unix_path, &cerr)) << cerr;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        std::string reply;
        ASSERT_TRUE(client.roundtrip(request_line(c, i), &reply))
            << "client " << c << " request " << i;
        std::lock_guard<std::mutex> lk(mu);
        responses["c" + std::to_string(c) + "-r" + std::to_string(i)] =
            std::move(reply);
      }
    });
  }
  for (std::thread& t : tenants) t.join();
  server.stop();
  return responses;
}

TEST(Soak, FourTenantsThousandRequestsZeroFailedRecoveriesByteStable) {
  const std::map<std::string, std::string> run1 = run_soak("run1");
  ASSERT_EQ(run1.size(), static_cast<std::size_t>(kClients * kRequestsPerClient));

  // Every response is a converged result with exact recovery: no
  // unrecoverable pages, no lossy restarts, no rollbacks -- the paper's
  // "DUEs are a non-event" claim under sustained mixed traffic.
  std::uint64_t total_errors = 0;
  std::uint64_t total_recovery_actions = 0;
  for (const auto& [id, line] : run1) {
    JsonValue v;
    std::string jerr;
    ASSERT_TRUE(json_parse(line, &v, &jerr)) << id << ": " << jerr;
    ASSERT_NE(v.find("event"), nullptr) << line;
    ASSERT_EQ(v.find("event")->string, "result") << id << ": " << line;
    EXPECT_TRUE(v.find("converged")->boolean) << id << ": " << line;
    total_errors += static_cast<std::uint64_t>(v.find("errors_injected")->number);
    const JsonValue* stats = v.find("stats");
    ASSERT_NE(stats, nullptr) << line;
    EXPECT_EQ(stats->find("unrecoverable")->number, 0.0) << id << ": " << line;
    EXPECT_EQ(stats->find("restarts")->number, 0.0) << id << ": " << line;
    EXPECT_EQ(stats->find("rollbacks")->number, 0.0) << id << ": " << line;
    total_recovery_actions += static_cast<std::uint64_t>(
        stats->find("spmv_recomputes")->number + stats->find("diag_solves")->number +
        stats->find("x_recoveries")->number +
        stats->find("residual_recomputes")->number +
        stats->find("contrib_recomputes")->number +
        stats->find("lincomb_recoveries")->number +
        stats->find("redo_updates")->number + stats->find("alt_q_recoveries")->number);
  }
  EXPECT_GT(total_errors, 500u) << "the soak must actually exercise DUE recovery";
  EXPECT_GT(total_recovery_actions, 0u);

  // Conformance: an identical campaign against a fresh server instance
  // reproduces every response byte-for-byte.
  const std::map<std::string, std::string> run2 = run_soak("run2");
  ASSERT_EQ(run2.size(), run1.size());
  for (const auto& [id, line] : run1) {
    const auto it = run2.find(id);
    ASSERT_NE(it, run2.end()) << id;
    EXPECT_EQ(line, it->second) << "response for " << id
                                << " must be byte-stable across server restarts";
  }
}

// ------------------------------------------------- adversarial tenants ----

constexpr int kPoliteWarmup = 4;
constexpr int kPoliteRequests = 30;
constexpr int kGreedyAttempts = 10 * kPoliteRequests;  // the "10x rate" flood

/// The polite tenant's deterministic request `i`: FEIR solves with injected
/// DUEs, heavy enough that queue-wait distortion would show in p95.
std::string polite_request(int i) {
  return "{\"op\": \"solve\", \"id\": \"p-" + std::to_string(i) +
         "\", \"matrix\": \"ecology2\", \"scale\": 0.12, \"method\": \"feir\","
         " \"tol\": 1e-8, \"mtbe_iters\": 30, \"seed\": " + std::to_string(7000 + i) +
         "}";
}

/// The greedy tenant's request `i`: cheap solves, also with DUE injection --
/// the flood must exercise recovery, not just the reject path.
std::string greedy_request(int i) {
  return "{\"op\": \"solve\", \"id\": \"g-" + std::to_string(i) +
         "\", \"matrix\": \"ecology2\", \"scale\": 0.05, \"method\": \"feir\","
         " \"tol\": 1e-8, \"mtbe_iters\": 15, \"seed\": " + std::to_string(9000 + i) +
         "}";
}

/// One worker, two tenants: "polite" dispatches on the high lane, "greedy"
/// is rate- and quota-bounded on the low lane.  Identical options in the
/// solo and contended runs, so responses must be byte-comparable.
ServerOptions adversarial_opts(const std::string& sock_tag) {
  ServerOptions opts;
  opts.unix_path = "/tmp/feir_soak_" + sock_tag + "_" + std::to_string(::getpid()) +
                   ".sock";
  opts.workers = 1;
  opts.queue_depth = 64;
  qos::TenantSpec polite;
  polite.id = "polite";
  polite.key = "polite-key";
  polite.weight = 4.0;
  polite.priority = qos::TenantPriority::High;
  qos::TenantSpec greedy;
  greedy.id = "greedy";
  greedy.key = "greedy-key";
  greedy.weight = 1.0;
  greedy.priority = qos::TenantPriority::Low;
  greedy.rate = 40.0;  // admissions/s; the flood attempts far more
  greedy.burst = 2.0;
  greedy.max_inflight = 1;
  opts.tenants = {polite, greedy};
  return opts;
}

struct PoliteRun {
  std::map<std::string, std::string> responses;  // id -> result line
  std::vector<double> latencies;                 // seconds, timed phase only
};

/// The polite tenant's fixed campaign: warm-up (cache assembly for BOTH
/// request shapes, symmetric across runs), then the timed sequence.
PoliteRun run_polite(Client& client) {
  PoliteRun run;
  std::string reply;
  for (int i = 0; i < kPoliteWarmup; ++i) {
    EXPECT_TRUE(client.roundtrip(polite_request(i), &reply));
    EXPECT_TRUE(client.roundtrip(greedy_request(i), &reply));  // warm its shape too
  }
  for (int i = 0; i < kPoliteRequests; ++i) {
    const std::string req = polite_request(kPoliteWarmup + i);
    const double t0 = now_seconds();
    EXPECT_TRUE(client.roundtrip(req, &reply)) << req;
    run.latencies.push_back(now_seconds() - t0);
    run.responses["p-" + std::to_string(kPoliteWarmup + i)] = reply;
  }
  return run;
}

TEST(Soak, AdversarialTenantMixIsolatesThePoliteTenant) {
  // Uncontended baseline.
  PoliteRun solo;
  {
    ServerOptions opts = adversarial_opts("solo");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    Client client;
    ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
    ASSERT_TRUE(client.authenticate("polite", "polite-key", &err)) << err;
    solo = run_polite(client);
    server.stop();
  }

  // Contended: a greedy flood at 10x the polite request count hammers the
  // same single worker for the whole timed window.
  PoliteRun contended;
  std::uint64_t greedy_results = 0, greedy_rejects = 0;
  {
    ServerOptions opts = adversarial_opts("adv");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    std::thread flood([&opts, &greedy_results, &greedy_rejects] {
      Client greedy;
      std::string gerr;
      ASSERT_TRUE(greedy.connect_unix(opts.unix_path, &gerr)) << gerr;
      ASSERT_TRUE(greedy.authenticate("greedy", "greedy-key", &gerr)) << gerr;
      // Fire the whole flood pipelined -- no waiting between requests, the
      // way an actual abusive client hits admission -- then drain replies.
      for (int i = 0; i < kGreedyAttempts; ++i)
        ASSERT_TRUE(greedy.send_line(greedy_request(100 + i)));
      int terminals = 0;
      std::string reply;
      while (terminals < kGreedyAttempts && greedy.recv_line(&reply)) {
        JsonValue v;
        std::string jerr;
        ASSERT_TRUE(json_parse(reply, &v, &jerr)) << reply;
        ++terminals;
        if (v.find("event")->string == "result") {
          ++greedy_results;
          // Cross-tenant isolation includes the greedy tenant's own solves:
          // every ADMITTED request still converges through its DUEs.
          EXPECT_TRUE(v.find("converged")->boolean) << reply;
          EXPECT_EQ(v.find("stats")->find("unrecoverable")->number, 0.0) << reply;
        } else {
          ++greedy_rejects;
          const std::string code = v.find("code")->string;
          // Rejections must be the per-tenant verdicts, never a server-wide
          // failure leaking from the flood.
          EXPECT_TRUE(code == "rate_limited" || code == "quota_exceeded") << reply;
        }
      }
      EXPECT_EQ(terminals, kGreedyAttempts);
    });

    Client client;
    ASSERT_TRUE(client.connect_unix(opts.unix_path, &err)) << err;
    ASSERT_TRUE(client.authenticate("polite", "polite-key", &err)) << err;
    contended = run_polite(client);
    flood.join();
    server.stop();
  }

  // The flood really happened and really got bounced.
  EXPECT_GT(greedy_rejects, 0u) << "the greedy tenant was never rate-limited";
  EXPECT_GT(greedy_results + greedy_rejects, static_cast<std::uint64_t>(kPoliteRequests))
      << "the flood underran the polite campaign";

  // Zero cross-tenant failures: every polite response is a converged result,
  // byte-identical to the uncontended run.
  ASSERT_EQ(contended.responses.size(), solo.responses.size());
  for (const auto& [id, line] : solo.responses) {
    JsonValue v;
    std::string jerr;
    ASSERT_TRUE(json_parse(line, &v, &jerr)) << id;
    ASSERT_EQ(v.find("event")->string, "result") << id << ": " << line;
    EXPECT_TRUE(v.find("converged")->boolean) << id << ": " << line;
    const auto it = contended.responses.find(id);
    ASSERT_NE(it, contended.responses.end()) << id;
    EXPECT_EQ(line, it->second)
        << "polite response " << id << " must not depend on the greedy flood";
  }

  // Latency isolation: the polite tenant's p95 under the flood stays within
  // 2x of its solo p95 (plus 10 ms of scheduler slack for CI noise) -- the
  // high lane plus greedy's quota bound head-of-line blocking to at most one
  // cheap greedy solve.
  const double solo_p95 = percentile(solo.latencies, 95.0);
  const double contended_p95 = percentile(contended.latencies, 95.0);
  EXPECT_LE(contended_p95, 2.0 * solo_p95 + 0.010)
      << "solo p95 " << solo_p95 << " s vs contended p95 " << contended_p95 << " s";
}

}  // namespace
}  // namespace feir::service
