// Multi-RHS property suite: the fused SpMM kernels (sparse/csr.hpp,
// sparse/sell.hpp, the SparseMatrix dispatch, and the chunked BatchOps
// staging) must be BIT-identical per column to k independent SpMVs — the
// contract that lets a batched solve reproduce k single solves exactly —
// over the same randomized shape families the backend suite uses, for every
// batch width, slice height, sorting window, and chunk count.
#include <gtest/gtest.h>

#include <vector>

#include "matrix_families.hpp"
#include "runtime/batch_ops.hpp"
#include "runtime/runtime.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix.hpp"
#include "sparse/sell.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

using testmat::bits_equal;
using testmat::family_name;
using testmat::kFamilies;
using testmat::random_matrix;
using testmat::random_vector;

/// Row-major n x k multivector with the suite's adversarial value mix.
std::vector<double> random_multivector(Rng& rng, index_t n, index_t k) {
  std::vector<double> X;
  X.reserve(static_cast<std::size_t>(n * k));
  for (index_t j = 0; j < k; ++j) {
    const std::vector<double> col = random_vector(rng, n);
    X.resize(static_cast<std::size_t>(n * k));
    for (index_t i = 0; i < n; ++i)
      X[static_cast<std::size_t>(i * k + j)] = col[static_cast<std::size_t>(i)];
  }
  return X;
}

/// Reference: column j of the SpMM via the single-vector kernel.
std::vector<double> k_spmvs(const SparseMatrix& M, const std::vector<double>& X,
                            index_t k) {
  const index_t n = M.n();
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  std::vector<double> Y(static_cast<std::size_t>(n * k));
  for (index_t j = 0; j < k; ++j) {
    for (index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = X[static_cast<std::size_t>(i * k + j)];
    M.spmv(x.data(), y.data());
    for (index_t i = 0; i < n; ++i) Y[static_cast<std::size_t>(i * k + j)] = y[static_cast<std::size_t>(i)];
  }
  return Y;
}

// -------------------------------------------- full-sweep bit equivalence --

TEST(SpmmProperty, SpmmBitEqualsKSpmvsAcrossShapesFormatsAndWidths) {
  const index_t widths[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 16};
  const index_t slices[] = {1, 2, 4, 8, 16};
  const index_t sigmas[] = {1, 8, 32, 64, 1 << 20};
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 48271ULL + 11);
    const int family = static_cast<int>(seed % kFamilies);
    const CsrMatrix A = random_matrix(rng, family);
    const index_t k = widths[seed % 10];
    const std::vector<double> X = random_multivector(rng, A.n, k);

    const SparseMatrix csr(A);
    const SparseMatrix sell = SparseMatrix::make(A, SparseFormat::Sell,
                                                 slices[seed % 5],
                                                 sigmas[(seed / 5) % 5]);
    const std::vector<double> ref = k_spmvs(csr, X, k);

    for (const SparseMatrix* M : {&csr, &sell}) {
      std::vector<double> Y(static_cast<std::size_t>(A.n * k), -7.0);
      M->spmm(X.data(), Y.data(), k);
      ASSERT_TRUE(bits_equal(ref.data(), Y.data(), A.n * k))
          << format_name(M->format()) << " " << family_name(family) << " seed "
          << seed << " n=" << A.n << " k=" << k;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 200);
}

TEST(SpmmProperty, RowSubsetSpmmBitEqualsAndTouchesOnlyTheRange) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 6364136223846793005ULL + 5);
    const int family = static_cast<int>(seed % kFamilies);
    const CsrMatrix A = random_matrix(rng, family);
    const index_t k = 1 + static_cast<index_t>(seed % 9);
    const std::vector<double> X = random_multivector(rng, A.n, k);
    const SparseMatrix csr(A);
    const SparseMatrix sell = SparseMatrix::make(
        A, SparseFormat::Sell, 1 + static_cast<index_t>(seed % 16),
        8 * (1 + static_cast<index_t>(seed % 9)));

    index_t r0 = static_cast<index_t>(rng.uniform_int(static_cast<int>(A.n + 1)));
    index_t r1 = static_cast<index_t>(rng.uniform_int(static_cast<int>(A.n + 1)));
    if (r0 > r1) std::swap(r0, r1);
    if (seed % 17 == 0) { r0 = 0; r1 = A.n; }

    std::vector<double> ref(static_cast<std::size_t>(A.n * k), -7.0);
    spmm_rows(A, r0, r1, X.data(), ref.data(), k);
    // The in-range rows must match the full-sweep reference bit for bit.
    {
      std::vector<double> full = k_spmvs(csr, X, k);
      for (index_t i = r0; i < r1; ++i)
        ASSERT_TRUE(bits_equal(&full[static_cast<std::size_t>(i * k)],
                               &ref[static_cast<std::size_t>(i * k)], k))
            << "csr row " << i << " seed " << seed;
    }
    std::vector<double> y(static_cast<std::size_t>(A.n * k), -7.0);
    sell.spmm_rows(r0, r1, X.data(), y.data(), k);
    ASSERT_TRUE(bits_equal(ref.data(), y.data(), A.n * k))
        << family_name(family) << " seed " << seed << " range [" << r0 << ", "
        << r1 << ") k=" << k;
    // Outside rows keep the canary: the fused kernels never scatter outside
    // the requested range (the recovery-footprint addressing guarantee).
    for (index_t i = 0; i < A.n; ++i)
      if (i < r0 || i >= r1)
        for (index_t j = 0; j < k; ++j)
          ASSERT_EQ(y[static_cast<std::size_t>(i * k + j)], -7.0);
  }
}

// ---------------------------------------------------- chunked batch path --

TEST(SpmmBatchOps, ChunkedSpmmIsBitDeterministicAtAnyChunkCount) {
  TestbedProblem p = make_testbed("consph", 0.3);
  const SparseMatrix S = SparseMatrix::make(p.A, SparseFormat::Sell, 8, 64);
  Rng rng(5);
  const index_t k = 6;
  const std::vector<double> X = random_multivector(rng, p.A.n, k);
  const std::vector<double> ref = k_spmvs(SparseMatrix(p.A), X, k);

  for (unsigned nchunks : {1u, 3u, 7u}) {
    Runtime rt(4);
    TaskBatch tb(rt);
    BatchOps ops(tb, p.A.n, nchunks);
    std::vector<double> Y(static_cast<std::size_t>(p.A.n * k), 0.0);
    ops.spmm(S, X.data(), Y.data(), k);
    ops.run();
    EXPECT_TRUE(bits_equal(ref.data(), Y.data(), p.A.n * k)) << nchunks << " chunks";
  }
}

TEST(SpmmBatchOps, DotColsMatchesPerColumnDotAtAnyChunkCount) {
  const index_t n = 1003, k = 5;
  Rng rng(17);
  const std::vector<double> X = random_multivector(rng, n, k);
  const std::vector<double> Y = random_multivector(rng, n, k);

  std::vector<double> first(static_cast<std::size_t>(k), 0.0);
  for (unsigned nchunks : {1u, 4u, 9u}) {
    Runtime rt(4);
    TaskBatch tb(rt);
    BatchOps ops(tb, n, nchunks);
    std::vector<double> out(static_cast<std::size_t>(k), -1.0);
    ops.dot_cols(X.data(), Y.data(), k, out.data());
    ops.run();
    if (nchunks == 1) {
      // Reference: the sequential per-column dot, which one chunk must equal
      // exactly.
      for (index_t j = 0; j < k; ++j) {
        double s = 0.0;
        for (index_t i = 0; i < n; ++i)
          s += X[static_cast<std::size_t>(i * k + j)] * Y[static_cast<std::size_t>(i * k + j)];
        EXPECT_EQ(out[static_cast<std::size_t>(j)], s) << "col " << j;
      }
      first = out;
    } else {
      // Chunked runs are deterministic: repeated runs at the same chunk
      // count are bitwise stable (index-ordered reduction).
      Runtime rt2(4);
      TaskBatch tb2(rt2);
      BatchOps ops2(tb2, n, nchunks);
      std::vector<double> again(static_cast<std::size_t>(k), -2.0);
      ops2.dot_cols(X.data(), Y.data(), k, again.data());
      ops2.run();
      EXPECT_TRUE(bits_equal(out.data(), again.data(), k)) << nchunks << " chunks";
    }
  }
}

TEST(SpmmBatchOps, AxpyColsAtScalesEachColumnByItsOwnFactor) {
  const index_t n = 257, k = 3;
  Rng rng(23);
  const std::vector<double> X = random_multivector(rng, n, k);
  std::vector<double> Y(static_cast<std::size_t>(n * k), 1.0);
  std::vector<double> expect = Y;
  const double scale[3] = {2.0, -0.5, 0.0};
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < k; ++j)
      expect[static_cast<std::size_t>(i * k + j)] +=
          -1.0 * scale[j] * X[static_cast<std::size_t>(i * k + j)];

  Runtime rt(2);
  TaskBatch tb(rt);
  BatchOps ops(tb, n, 3);
  ops.axpy_cols_at(scale, -1.0, X.data(), Y.data(), k);
  ops.run();
  EXPECT_TRUE(bits_equal(expect.data(), Y.data(), n * k));
}

}  // namespace
}  // namespace feir
