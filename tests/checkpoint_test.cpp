// Unit tests for the checkpoint/rollback engine and the optimal-period model.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

TEST(Checkpointer, InMemorySaveRestoreRoundTrip) {
  const index_t n = 1000;
  Checkpointer ck(n, {});
  EXPECT_FALSE(ck.has_checkpoint());

  Rng rng(1);
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : d) v = rng.uniform(-1, 1);
  ck.save(37, x.data(), d.data());
  EXPECT_TRUE(ck.has_checkpoint());

  std::vector<double> x2(x.size(), 0.0), d2(d.size(), 0.0);
  index_t iter = 0;
  ASSERT_TRUE(ck.restore(x2.data(), d2.data(), &iter));
  EXPECT_EQ(iter, 37);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x2[i], x[i]);
    EXPECT_EQ(d2[i], d[i]);
  }
}

TEST(Checkpointer, RestoreWithoutSaveFails) {
  Checkpointer ck(10, {});
  std::vector<double> x(10), d(10);
  index_t iter;
  EXPECT_FALSE(ck.restore(x.data(), d.data(), &iter));
}

TEST(Checkpointer, DiskBackedRoundTrip) {
  const index_t n = 2048;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_test.bin";
  {
    Checkpointer ck(n, opts);
    Rng rng(2);
    std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
    for (auto& v : x) v = rng.uniform(-5, 5);
    for (auto& v : d) v = rng.uniform(-5, 5);
    const double cost = ck.save(11, x.data(), d.data());
    EXPECT_GT(cost, 0.0);
    EXPECT_EQ(ck.last_cost(), cost);

    std::vector<double> x2(x.size()), d2(d.size());
    index_t iter = 0;
    ASSERT_TRUE(ck.restore(x2.data(), d2.data(), &iter));
    EXPECT_EQ(iter, 11);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x2[i], x[i]);
      EXPECT_EQ(d2[i], d[i]);
    }
  }
  // Destructor removes the file.
  std::FILE* f = std::fopen("/tmp/feir_ckpt_test.bin", "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

// -------------------------- disk-format hardening (header + checksum) ----

namespace disk {

/// Saves one checkpoint to `path` and returns the vectors written.
std::pair<std::vector<double>, std::vector<double>> write_one(Checkpointer& ck,
                                                              index_t n, index_t iter) {
  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  for (auto& v : x) v = rng.uniform(-3, 3);
  for (auto& v : d) v = rng.uniform(-3, 3);
  ck.save(iter, x.data(), d.data());
  return {x, d};
}

}  // namespace disk

TEST(CheckpointerDisk, TruncatedFileIsRejected) {
  const index_t n = 512;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_trunc_" + std::to_string(::getpid()) + ".bin";
  Checkpointer ck(n, opts);
  disk::write_one(ck, n, 5);

  // Chop off the tail (checksum plus part of d): restore must refuse, not
  // hand back a half-read state.
  ASSERT_EQ(::truncate(opts.path.c_str(), 64), 0);
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  index_t iter = 0;
  EXPECT_FALSE(ck.restore(x.data(), d.data(), &iter));
}

TEST(CheckpointerDisk, CorruptPayloadByteIsRejected) {
  const index_t n = 512;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_flip_" + std::to_string(::getpid()) + ".bin";
  Checkpointer ck(n, opts);
  disk::write_one(ck, n, 5);

  // Flip one payload byte in place: the checksum catches it.
  {
    std::FILE* f = std::fopen(opts.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 24 + 100 * 8 + 3, SEEK_SET), 0);  // inside x
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  index_t iter = 0;
  EXPECT_FALSE(ck.restore(x.data(), d.data(), &iter));
}

TEST(CheckpointerDisk, ForeignFileIsRejected) {
  const index_t n = 64;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_foreign_" + std::to_string(::getpid()) + ".bin";
  Checkpointer ck(n, opts);
  disk::write_one(ck, n, 2);

  // Overwrite with something that is not a checkpoint at all (bad magic).
  {
    std::FILE* f = std::fopen(opts.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string junk(2048, 'z');
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  index_t iter = 0;
  EXPECT_FALSE(ck.restore(x.data(), d.data(), &iter));
}

TEST(CheckpointerDisk, TrailingGarbageIsRejected) {
  const index_t n = 64;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_tail_" + std::to_string(::getpid()) + ".bin";
  Checkpointer ck(n, opts);
  disk::write_one(ck, n, 2);

  {
    std::FILE* f = std::fopen(opts.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("extra", f);
    std::fclose(f);
  }
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  index_t iter = 0;
  EXPECT_FALSE(ck.restore(x.data(), d.data(), &iter));
}

TEST(CheckpointerDisk, RoundTripSurvivesIntactAndCarriesIterFromTheFile) {
  const index_t n = 1024;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_ok_" + std::to_string(::getpid()) + ".bin";
  Checkpointer ck(n, opts);
  const auto [x, d] = disk::write_one(ck, n, 123);

  std::vector<double> x2(x.size()), d2(d.size());
  index_t iter = 0;
  ASSERT_TRUE(ck.restore(x2.data(), d2.data(), &iter));
  EXPECT_EQ(iter, 123);
  EXPECT_EQ(x2, x);
  EXPECT_EQ(d2, d);
}

TEST(Checkpointer, LaterSaveWins) {
  Checkpointer ck(4, {});
  std::vector<double> a{1, 1, 1, 1}, d{0, 0, 0, 0};
  ck.save(1, a.data(), d.data());
  std::vector<double> b{2, 2, 2, 2};
  ck.save(2, b.data(), d.data());
  std::vector<double> out(4), dout(4);
  index_t iter;
  ASSERT_TRUE(ck.restore(out.data(), dout.data(), &iter));
  EXPECT_EQ(iter, 2);
  EXPECT_EQ(out[0], 2.0);
}

TEST(OptimalPeriod, MatchesYoungFormula) {
  // T_opt = sqrt(2 C M); with C = 0.5 s, M = 100 s -> 10 s; at 0.01 s/iter
  // that is 1000 iterations.
  EXPECT_EQ(optimal_checkpoint_period(0.5, 100.0, 0.01), 1000);
}

TEST(OptimalPeriod, ScalesWithMtbe) {
  const index_t fast_err = optimal_checkpoint_period(0.1, 1.0, 0.001);
  const index_t slow_err = optimal_checkpoint_period(0.1, 100.0, 0.001);
  EXPECT_LT(fast_err, slow_err);
  // sqrt scaling: factor 10 in MTBE -> factor ~sqrt(10) in period.
  EXPECT_NEAR(static_cast<double>(slow_err) / static_cast<double>(fast_err), std::sqrt(100.0),
              1.0);
}

TEST(OptimalPeriod, ClampsToSaneRange) {
  EXPECT_GE(optimal_checkpoint_period(1e-12, 1e-12, 1.0), 1);
  EXPECT_LE(optimal_checkpoint_period(1e6, 1e9, 1e-9), 10000);
  EXPECT_EQ(optimal_checkpoint_period(0.1, 10.0, 0.0), 1000);  // degenerate iter time
}

}  // namespace
}  // namespace feir
