// Unit tests for the checkpoint/rollback engine and the optimal-period model.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/checkpoint.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

TEST(Checkpointer, InMemorySaveRestoreRoundTrip) {
  const index_t n = 1000;
  Checkpointer ck(n, {});
  EXPECT_FALSE(ck.has_checkpoint());

  Rng rng(1);
  std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : d) v = rng.uniform(-1, 1);
  ck.save(37, x.data(), d.data());
  EXPECT_TRUE(ck.has_checkpoint());

  std::vector<double> x2(x.size(), 0.0), d2(d.size(), 0.0);
  index_t iter = 0;
  ASSERT_TRUE(ck.restore(x2.data(), d2.data(), &iter));
  EXPECT_EQ(iter, 37);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x2[i], x[i]);
    EXPECT_EQ(d2[i], d[i]);
  }
}

TEST(Checkpointer, RestoreWithoutSaveFails) {
  Checkpointer ck(10, {});
  std::vector<double> x(10), d(10);
  index_t iter;
  EXPECT_FALSE(ck.restore(x.data(), d.data(), &iter));
}

TEST(Checkpointer, DiskBackedRoundTrip) {
  const index_t n = 2048;
  CheckpointOptions opts;
  opts.path = "/tmp/feir_ckpt_test.bin";
  {
    Checkpointer ck(n, opts);
    Rng rng(2);
    std::vector<double> x(static_cast<std::size_t>(n)), d(x.size());
    for (auto& v : x) v = rng.uniform(-5, 5);
    for (auto& v : d) v = rng.uniform(-5, 5);
    const double cost = ck.save(11, x.data(), d.data());
    EXPECT_GT(cost, 0.0);
    EXPECT_EQ(ck.last_cost(), cost);

    std::vector<double> x2(x.size()), d2(d.size());
    index_t iter = 0;
    ASSERT_TRUE(ck.restore(x2.data(), d2.data(), &iter));
    EXPECT_EQ(iter, 11);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x2[i], x[i]);
      EXPECT_EQ(d2[i], d[i]);
    }
  }
  // Destructor removes the file.
  std::FILE* f = std::fopen("/tmp/feir_ckpt_test.bin", "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(Checkpointer, LaterSaveWins) {
  Checkpointer ck(4, {});
  std::vector<double> a{1, 1, 1, 1}, d{0, 0, 0, 0};
  ck.save(1, a.data(), d.data());
  std::vector<double> b{2, 2, 2, 2};
  ck.save(2, b.data(), d.data());
  std::vector<double> out(4), dout(4);
  index_t iter;
  ASSERT_TRUE(ck.restore(out.data(), dout.data(), &iter));
  EXPECT_EQ(iter, 2);
  EXPECT_EQ(out[0], 2.0);
}

TEST(OptimalPeriod, MatchesYoungFormula) {
  // T_opt = sqrt(2 C M); with C = 0.5 s, M = 100 s -> 10 s; at 0.01 s/iter
  // that is 1000 iterations.
  EXPECT_EQ(optimal_checkpoint_period(0.5, 100.0, 0.01), 1000);
}

TEST(OptimalPeriod, ScalesWithMtbe) {
  const index_t fast_err = optimal_checkpoint_period(0.1, 1.0, 0.001);
  const index_t slow_err = optimal_checkpoint_period(0.1, 100.0, 0.001);
  EXPECT_LT(fast_err, slow_err);
  // sqrt scaling: factor 10 in MTBE -> factor ~sqrt(10) in period.
  EXPECT_NEAR(static_cast<double>(slow_err) / static_cast<double>(fast_err), std::sqrt(100.0),
              1.0);
}

TEST(OptimalPeriod, ClampsToSaneRange) {
  EXPECT_GE(optimal_checkpoint_period(1e-12, 1e-12, 1.0), 1);
  EXPECT_LE(optimal_checkpoint_period(1e6, 1e9, 1e-9), 10000);
  EXPECT_EQ(optimal_checkpoint_period(0.1, 10.0, 0.0), 1000);  // degenerate iter time
}

}  // namespace
}  // namespace feir
