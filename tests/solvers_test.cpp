// Convergence tests for the reference solvers (CG, BiCGStab, GMRES) across
// the testbed matrices and with/without preconditioning.
#include <gtest/gtest.h>

#include <cmath>

#include "precond/blockjacobi.hpp"
#include "solvers/bicgstab.hpp"
#include "solvers/cg.hpp"
#include "solvers/gmres.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"

namespace feir {
namespace {

double solution_error(const TestbedProblem& p, const std::vector<double>& x) {
  double e = 0.0;
  for (index_t i = 0; i < p.A.n; ++i) {
    const double d = x[static_cast<std::size_t>(i)] - p.x_true[static_cast<std::size_t>(i)];
    e += d * d;
  }
  return std::sqrt(e) / norm2(p.x_true.data(), p.A.n);
}

class CgOnTestbed : public ::testing::TestWithParam<std::string> {};

TEST_P(CgOnTestbed, ConvergesToTrueSolution) {
  TestbedProblem p = make_testbed(GetParam(), 0.2);
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  SolveOptions opts;
  opts.tol = 1e-10;
  const SolveResult r = cg_solve(p.A, p.b.data(), x.data(), opts);
  EXPECT_TRUE(r.converged) << GetParam();
  EXPECT_LE(r.final_relres, 1e-10);
  EXPECT_LT(solution_error(p, x), 1e-5) << GetParam();
}

TEST_P(CgOnTestbed, BlockJacobiPcgNeedsNoMoreIterations) {
  TestbedProblem p = make_testbed(GetParam(), 0.15);
  SolveOptions opts;
  opts.tol = 1e-8;
  std::vector<double> x1(static_cast<std::size_t>(p.A.n), 0.0), x2 = x1;
  const SolveResult plain = cg_solve(p.A, p.b.data(), x1.data(), opts);
  BlockJacobi M(p.A, BlockLayout(p.A.n, 64));
  const SolveResult pre = cg_solve(p.A, p.b.data(), x2.data(), opts, &M);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  // Block-Jacobi never hurts on these diagonally-dominant SPD problems;
  // allow a tiny slack for round-off wiggle.
  EXPECT_LE(pre.iterations, plain.iterations + 5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, CgOnTestbed, ::testing::ValuesIn(testbed_names()),
                         [](const auto& info) { return info.param; });

TEST(Cg, ZeroRhsConvergesImmediately) {
  CsrMatrix A = laplace2d_5pt(5, 5);
  std::vector<double> b(25, 0.0), x(25, 0.0);
  const SolveResult r = cg_solve(A, b.data(), x.data(), {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cg, WarmStartFromSolutionIsFree) {
  TestbedProblem p = make_testbed("qa8fm", 0.3);
  std::vector<double> x = p.x_true;
  const SolveResult r = cg_solve(p.A, p.b.data(), x.data(), {});
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
}

TEST(Cg, HistoryIsMonotoneEnoughAndTimestamped) {
  TestbedProblem p = make_testbed("ecology2", 0.15);
  SolveOptions opts;
  opts.record_history = true;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const SolveResult r = cg_solve(p.A, p.b.data(), x.data(), opts);
  ASSERT_GT(r.history.size(), 2u);
  EXPECT_LT(r.history.back().relres, r.history.front().relres);
  EXPECT_GE(r.history.back().time_s, r.history.front().time_s);
  for (std::size_t i = 0; i < r.history.size(); ++i)
    EXPECT_EQ(r.history[i].iter, static_cast<index_t>(i));
}

TEST(Cg, RespectsMaxIter) {
  TestbedProblem p = make_testbed("af_shell8", 0.2);
  SolveOptions opts;
  opts.max_iter = 3;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const SolveResult r = cg_solve(p.A, p.b.data(), x.data(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

// --- BiCGStab -------------------------------------------------------------

TEST(Bicgstab, SolvesSpdProblem) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  SolveOptions opts;
  opts.tol = 1e-10;
  const SolveResult r = bicgstab_solve(p.A, p.b.data(), x.data(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(solution_error(p, x), 1e-5);
}

TEST(Bicgstab, SolvesNonSymmetricSystem) {
  // Convection-diffusion-like: Laplacian plus a skew term.
  CsrMatrix L = laplace2d_5pt(20, 20);
  std::vector<Triplet> ts;
  for (index_t i = 0; i < L.n; ++i)
    for (index_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      ts.push_back({i, L.col_idx[static_cast<std::size_t>(k)],
                    L.vals[static_cast<std::size_t>(k)]});
  for (index_t i = 0; i + 1 < L.n; ++i) {
    ts.push_back({i, i + 1, 0.3});
    ts.push_back({i + 1, i, -0.3});
  }
  CsrMatrix A = CsrMatrix::from_triplets(L.n, std::move(ts));
  ASSERT_FALSE(A.is_symmetric());

  std::vector<double> x_true(static_cast<std::size_t>(A.n));
  for (index_t i = 0; i < A.n; ++i)
    x_true[static_cast<std::size_t>(i)] = std::cos(0.1 * static_cast<double>(i));
  std::vector<double> b(x_true.size());
  spmv(A, x_true.data(), b.data());

  std::vector<double> x(x_true.size(), 0.0);
  SolveOptions opts;
  opts.tol = 1e-10;
  const SolveResult r = bicgstab_solve(A, b.data(), x.data(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(A, x.data(), b.data()) / norm2(b.data(), A.n), 1e-9);
}

TEST(Bicgstab, PreconditionedConverges) {
  TestbedProblem p = make_testbed("Dubcova3", 0.15);
  BlockJacobi M(p.A, BlockLayout(p.A.n, 64));
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  SolveOptions opts;
  opts.tol = 1e-10;
  const SolveResult r = bicgstab_solve(p.A, p.b.data(), x.data(), opts, &M);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(solution_error(p, x), 1e-5);
}

// --- GMRES ----------------------------------------------------------------

TEST(Gmres, SolvesSpdProblem) {
  TestbedProblem p = make_testbed("parabolic_fem", 0.12);
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  GmresOptions opts;
  opts.tol = 1e-10;
  opts.restart = 40;
  const SolveResult r = gmres_solve(p.A, p.b.data(), x.data(), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(solution_error(p, x), 1e-5);
}

TEST(Gmres, RestartLengthTradesIterations) {
  TestbedProblem p = make_testbed("qa8fm", 0.25);
  GmresOptions short_r;
  short_r.restart = 5;
  short_r.tol = 1e-9;
  GmresOptions long_r = short_r;
  long_r.restart = 50;
  std::vector<double> x1(static_cast<std::size_t>(p.A.n), 0.0), x2 = x1;
  const SolveResult a = gmres_solve(p.A, p.b.data(), x1.data(), short_r);
  const SolveResult b = gmres_solve(p.A, p.b.data(), x2.data(), long_r);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_LE(b.iterations, a.iterations + 2);
}

TEST(Gmres, PreconditionedConverges) {
  TestbedProblem p = make_testbed("thermal2", 0.12);
  BlockJacobi M(p.A, BlockLayout(p.A.n, 64));
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  GmresOptions opts;
  opts.tol = 1e-9;
  const SolveResult r = gmres_solve(p.A, p.b.data(), x.data(), opts, &M);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
}

TEST(Gmres, NonSymmetricSystem) {
  CsrMatrix L = laplace2d_5pt(15, 15);
  std::vector<Triplet> ts;
  for (index_t i = 0; i < L.n; ++i)
    for (index_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      ts.push_back({i, L.col_idx[static_cast<std::size_t>(k)],
                    L.vals[static_cast<std::size_t>(k)]});
  for (index_t i = 0; i + 1 < L.n; ++i) ts.push_back({i, i + 1, 0.5});
  CsrMatrix A = CsrMatrix::from_triplets(L.n, std::move(ts));
  std::vector<double> x_true(static_cast<std::size_t>(A.n), 1.0), b(x_true.size());
  spmv(A, x_true.data(), b.data());
  std::vector<double> x(x_true.size(), 0.0);
  GmresOptions opts;
  opts.tol = 1e-10;
  const SolveResult r = gmres_solve(A, b.data(), x.data(), opts);
  EXPECT_TRUE(r.converged);
}

// --- Cross-solver agreement ------------------------------------------------

TEST(Solvers, AllThreeAgreeOnTheSameSystem) {
  TestbedProblem p = make_testbed("consph", 0.2);
  SolveOptions so;
  so.tol = 1e-11;
  GmresOptions go;
  go.tol = 1e-11;
  std::vector<double> xc(static_cast<std::size_t>(p.A.n), 0.0), xb = xc, xg = xc;
  ASSERT_TRUE(cg_solve(p.A, p.b.data(), xc.data(), so).converged);
  ASSERT_TRUE(bicgstab_solve(p.A, p.b.data(), xb.data(), so).converged);
  ASSERT_TRUE(gmres_solve(p.A, p.b.data(), xg.data(), go).converged);
  for (index_t i = 0; i < p.A.n; i += 7) {
    EXPECT_NEAR(xb[static_cast<std::size_t>(i)], xc[static_cast<std::size_t>(i)], 1e-6);
    EXPECT_NEAR(xg[static_cast<std::size_t>(i)], xc[static_cast<std::size_t>(i)], 1e-6);
  }
}

}  // namespace
}  // namespace feir
