// Unit tests for the work-stealing dataflow runtime: dependency semantics
// (RAW, WAR, WAW), priority lanes under stealing, concurrency, nested and
// batched submission, randomized graphs against a serial reference, and the
// state-time accounting used for Table 3.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/batch_ops.hpp"
#include "runtime/runtime.hpp"
#include "runtime/trace.hpp"
#include "sparse/vecops.hpp"

namespace feir {
namespace {

TEST(Runtime, RunsAllTasks) {
  Runtime rt(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    rt.submit([&] { count.fetch_add(1); }, {});
  rt.taskwait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(rt.tasks_executed(), 100u);
}

TEST(Runtime, RawDependencyOrders) {
  Runtime rt(4);
  int data = 0;
  std::atomic<int> observed{-1};
  rt.submit([&] { data = 42; }, {out(&data)});
  rt.submit([&] { observed = data; }, {in(&data)});
  rt.taskwait();
  EXPECT_EQ(observed.load(), 42);
}

TEST(Runtime, ChainOfInOutIsSequential) {
  Runtime rt(8);
  long long x = 0;
  for (int i = 0; i < 50; ++i)
    rt.submit([&x] { x = x * 2 + 1; }, {inout(&x)});
  rt.taskwait();
  // x = 2^50 - 1 only if strictly sequential.
  EXPECT_EQ(x, (1LL << 50) - 1);
}

TEST(Runtime, WarDependencyProtectsReaders) {
  Runtime rt(8);
  int data = 7;
  std::vector<int> reads(20, 0);
  std::atomic<int> done_reads{0};
  rt.submit([&] { data = 7; }, {out(&data)});
  for (int i = 0; i < 20; ++i)
    rt.submit(
        [&, i] {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          reads[static_cast<std::size_t>(i)] = data;
          done_reads.fetch_add(1);
        },
        {in(&data)});
  rt.submit([&] { data = 99; }, {out(&data)});  // WAR: must wait for readers
  rt.taskwait();
  for (int v : reads) EXPECT_EQ(v, 7);
  EXPECT_EQ(data, 99);
}

TEST(Runtime, IndependentKeysRunConcurrently) {
  Runtime rt(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  int a = 0, b = 0, c = 0, d = 0;
  auto body = [&] {
    const int now = concurrent.fetch_add(1) + 1;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    concurrent.fetch_sub(1);
  };
  rt.submit(body, {out(&a)});
  rt.submit(body, {out(&b)});
  rt.submit(body, {out(&c)});
  rt.submit(body, {out(&d)});
  rt.taskwait();
  EXPECT_GE(peak.load(), 2);  // at least some overlap on 4 workers
}

TEST(Runtime, PriorityOrdersReadyTasksOnSingleWorker) {
  Runtime rt(1);
  std::vector<int> order;
  int gate = 0;
  // Block the single worker so that all later tasks are ready simultaneously.
  rt.submit([&] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); },
            {out(&gate)});
  for (int i = 0; i < 3; ++i)
    rt.submit([&order, i] { order.push_back(i); }, {in(&gate)}, /*priority=*/0);
  rt.submit([&order] { order.push_back(99); }, {in(&gate)}, /*priority=*/5);
  rt.taskwait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 99);  // highest priority first
  EXPECT_EQ(order[1], 0);   // then FIFO among equals
  EXPECT_EQ(order[2], 1);
}

TEST(Runtime, NestedSubmissionWorks) {
  Runtime rt(4);
  std::atomic<int> total{0};
  rt.submit(
      [&] {
        for (int i = 0; i < 10; ++i)
          rt.submit([&] { total.fetch_add(1); }, {});
      },
      {});
  rt.taskwait();
  EXPECT_EQ(total.load(), 10);
}

TEST(Runtime, TaskwaitIsReusable) {
  Runtime rt(2);
  int x = 0;
  rt.submit([&] { x = 1; }, {out(&x)});
  rt.taskwait();
  EXPECT_EQ(x, 1);
  rt.submit([&] { x = 2; }, {inout(&x)});
  rt.taskwait();
  EXPECT_EQ(x, 2);
}

TEST(Runtime, PerBlockKeysAllowPartialOverlap) {
  Runtime rt(4);
  std::vector<int> v(4, 0);
  // writers on (v, i) then readers on (v, i): only same-index pairs order.
  std::atomic<int> sum{0};
  for (int i = 0; i < 4; ++i)
    rt.submit([&v, i] { v[static_cast<std::size_t>(i)] = i + 1; }, {out(v.data(), i)});
  for (int i = 0; i < 4; ++i)
    rt.submit([&, i] { sum.fetch_add(v[static_cast<std::size_t>(i)]); },
              {in(v.data(), i)});
  rt.taskwait();
  EXPECT_EQ(sum.load(), 1 + 2 + 3 + 4);
}

TEST(Runtime, StateTimesAccumulateAndReset) {
  Runtime rt(2);
  for (int i = 0; i < 8; ++i)
    rt.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }, {});
  rt.taskwait();
  auto s = rt.state_times();
  EXPECT_GT(s.useful, 0.02);  // 8 x 5ms over 2 workers >= 20ms useful
  rt.reset_state_times();
  auto z = rt.state_times();
  EXPECT_EQ(z.useful, 0.0);
}

TEST(Runtime, ManyTasksStress) {
  Runtime rt(8);
  std::atomic<long> sum{0};
  int key = 0;
  for (int i = 0; i < 5000; ++i) {
    if (i % 10 == 0)
      rt.submit([&] { sum.fetch_add(1); }, {inout(&key)});
    else
      rt.submit([&] { sum.fetch_add(1); }, {});
  }
  rt.taskwait();
  EXPECT_EQ(sum.load(), 5000);
}

TEST(Tracer, RecordsTaskExecutions) {
  TaskTracer tracer;
  tracer.reset();
  Runtime rt(2);
  rt.set_tracer(&tracer);
  for (int i = 0; i < 6; ++i)
    rt.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }, {},
              0, i % 2 == 0 ? "q" : "r1");
  rt.taskwait();
  const auto evs = tracer.events();
  ASSERT_EQ(evs.size(), 6u);
  for (const auto& e : evs) {
    EXPECT_LT(e.begin_s, e.end_s);
    EXPECT_LT(e.worker, 2u);
    EXPECT_TRUE(e.name == "q" || e.name == "r1");
  }
  // Sorted by begin time.
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_LE(evs[i - 1].begin_s, evs[i].begin_s);
}

TEST(Tracer, RenderPaintsLanesAndUppercasesRecovery) {
  TaskTracer tracer;
  tracer.reset();
  tracer.record(0, "q", 0.0, 0.5);
  tracer.record(1, "r1", 0.25, 0.75);
  const std::string pic = tracer.render(40);
  EXPECT_NE(pic.find("T0 |"), std::string::npos);
  EXPECT_NE(pic.find('q'), std::string::npos);
  EXPECT_NE(pic.find('R'), std::string::npos);  // recovery upper-cased
  EXPECT_EQ(pic.find("r1"), std::string::npos);
}

TEST(Tracer, EmptyTraceRendersGracefully) {
  TaskTracer tracer;
  tracer.reset();
  EXPECT_EQ(tracer.render(), "(no events)\n");
}

TEST(Runtime, TasksPendingTracksInFlightWork) {
  Runtime rt(2);
  EXPECT_EQ(rt.tasks_pending(), 0u);
  std::atomic<bool> release{false};
  rt.submit([&] {
    while (!release.load()) std::this_thread::yield();
  }, {});
  EXPECT_GE(rt.tasks_pending(), 1u);  // blocked task is still in flight
  release = true;
  rt.taskwait();
  EXPECT_EQ(rt.tasks_pending(), 0u);
}

TEST(Runtime, DiamondDependency) {
  Runtime rt(4);
  int a = 0, b1 = 0, b2 = 0;
  std::atomic<int> final_val{0};
  rt.submit([&] { a = 1; }, {out(&a)});
  rt.submit([&] { b1 = a + 1; }, {in(&a), out(&b1)});
  rt.submit([&] { b2 = a + 2; }, {in(&a), out(&b2)});
  rt.submit([&] { final_val = b1 + b2; }, {in(&b1), in(&b2)});
  rt.taskwait();
  EXPECT_EQ(final_val.load(), 5);
}

// Random graphs: build the dependency edges with a serial reference
// implementation of the in/out/inout semantics, run the graph on the
// work-stealing scheduler, and check every edge's completion ordering.
TEST(Runtime, RandomizedGraphsMatchSerialReference) {
  std::mt19937 rng(12345);
  static char keys[6];
  for (int trial = 0; trial < 6; ++trial) {
    const int ntasks = 120 + static_cast<int>(rng() % 80);
    std::vector<std::vector<Dep>> deps(static_cast<std::size_t>(ntasks));
    for (auto& d : deps) {
      const int nd = 1 + static_cast<int>(rng() % 3);
      std::set<int> used;
      for (int j = 0; j < nd; ++j) {
        const int k = static_cast<int>(rng() % 6);
        if (!used.insert(k).second) continue;
        const int m = static_cast<int>(rng() % 3);
        d.push_back({{&keys[k], 0},
                     m == 0 ? Access::In : (m == 1 ? Access::Out : Access::InOut)});
      }
    }

    // Serial reference: the same table algorithm, producing (pred, succ).
    struct Entry {
      int last_writer = -1;
      std::vector<int> readers;
    };
    std::unordered_map<const void*, Entry> table;
    std::vector<std::pair<int, int>> edges;
    for (int t = 0; t < ntasks; ++t) {
      auto edge = [&](int pred) {
        if (pred >= 0 && pred != t) edges.emplace_back(pred, t);
      };
      for (const Dep& d : deps[static_cast<std::size_t>(t)]) {
        Entry& e = table[d.key.base];
        if (d.mode == Access::In) {
          edge(e.last_writer);
          e.readers.push_back(t);
        } else {
          edge(e.last_writer);
          for (int r : e.readers) edge(r);
          e.readers.clear();
          e.last_writer = t;
        }
      }
    }

    std::vector<int> pos(static_cast<std::size_t>(ntasks), -1);
    std::atomic<int> counter{0};
    Runtime rt(4);
    TaskBatch batch(rt);
    for (int t = 0; t < ntasks; ++t)
      batch.add([&pos, &counter, t] { pos[static_cast<std::size_t>(t)] = counter.fetch_add(1); },
                deps[static_cast<std::size_t>(t)]);
    batch.submit();
    rt.taskwait();

    for (const auto& [p, s] : edges) {
      ASSERT_GE(pos[static_cast<std::size_t>(p)], 0);
      EXPECT_LT(pos[static_cast<std::size_t>(p)], pos[static_cast<std::size_t>(s)])
          << "edge " << p << " -> " << s << " violated (trial " << trial << ")";
    }
  }
}

// Multi-key submissions from several workers at once: the sorted shard
// locking must serialize edge creation consistently (no deadlock, no cycle),
// and every task must run.
TEST(Runtime, ConcurrentSubmitFromInsideTasks) {
  Runtime rt(4);
  std::atomic<int> total{0};
  static char keys[4];
  for (int i = 0; i < 8; ++i) {
    rt.submit(
        [&rt, &total, i] {
          for (int j = 0; j < 40; ++j) {
            const int a = (i + j) % 4, b = (i + j + 1 + j % 3) % 4;
            std::vector<Dep> deps{inout(&keys[a])};
            if (b != a) deps.push_back(inout(&keys[b]));
            rt.submit([&total] { total.fetch_add(1); }, std::move(deps));
          }
        },
        {});
  }
  for (int j = 0; j < 100; ++j)
    rt.submit([&total] { total.fetch_add(1); }, {inout(&keys[j % 4])});
  rt.taskwait();
  EXPECT_EQ(total.load(), 8 * 40 + 100);
}

// Everything is produced from inside one worker's task (so it lands on that
// worker's deque); the other workers must steal to participate.
TEST(Runtime, StealHeavyWorkload) {
  Runtime rt(4);
  std::atomic<int> count{0};
  std::mutex mu;
  std::set<std::thread::id> tids;
  rt.submit(
      [&] {
        for (int i = 0; i < 200; ++i) {
          rt.submit(
              [&] {
                {
                  std::lock_guard<std::mutex> lk(mu);
                  tids.insert(std::this_thread::get_id());
                }
                std::this_thread::sleep_for(std::chrono::microseconds(300));
                count.fetch_add(1);
              },
              {});
        }
      },
      {});
  rt.taskwait();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GE(tids.size(), 2u);  // stealing actually happened
}

// AFEIR's guarantee under stealing: low-priority (recovery) tasks never run
// while normal-lane work is queued anywhere.  Releasing a mixed wave from a
// gate task, the low lane may only overtake at the drain boundary (at most
// one in-flight normal task per worker).
TEST(Runtime, LowPriorityYieldsUnderStealing) {
  Runtime rt(4);
  static char gate;
  std::mutex mu;
  std::vector<int> order;
  auto rec = [&](int v) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(v);
  };
  rt.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); },
            {out(&gate)});
  const int kHigh = 24, kLow = 24;
  for (int i = 0; i < kLow; ++i)
    rt.submit(
        [&, i] {
          rec(1000 + i);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        },
        {in(&gate)}, /*priority=*/-1);
  for (int i = 0; i < kHigh; ++i)
    rt.submit(
        [&, i] {
          rec(i);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        },
        {in(&gate)}, /*priority=*/0);
  rt.taskwait();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kHigh + kLow));
  std::size_t last_normal = 0;
  for (std::size_t k = 0; k < order.size(); ++k)
    if (order[k] < 1000) last_normal = k;
  std::size_t lows_before = 0;
  for (std::size_t k = 0; k < last_normal; ++k)
    if (order[k] >= 1000) ++lows_before;
  EXPECT_LE(lows_before, 8u);  // 2 drain-boundary windows x 4 workers
}

// A batch stages without running, then publishes the whole dependent graph
// (including the WAR edge) as one epoch.
TEST(Runtime, TaskBatchPublishesWholeGraph) {
  Runtime rt(4);
  TaskBatch batch(rt);
  int a = 0;
  std::vector<int> reads(3, -1);
  batch.add([&] { a = 5; }, {out(&a)});
  for (int i = 0; i < 3; ++i)
    batch.add([&, i] { reads[static_cast<std::size_t>(i)] = a; }, {in(&a)});
  batch.add([&] { a = 9; }, {out(&a)});  // WAR: waits for all readers
  EXPECT_EQ(rt.tasks_pending(), 0u);     // staging does not run anything
  EXPECT_EQ(batch.size(), 5u);
  batch.submit();
  rt.taskwait();
  for (int v : reads) EXPECT_EQ(v, 5);
  EXPECT_EQ(a, 9);
  EXPECT_EQ(rt.tasks_executed(), 5u);
}

// Chunked reductions sum partials in index order: any schedule, any worker
// count, bit-identical results.
TEST(BatchOps, ChunkedReductionsAreDeterministic) {
  const index_t n = 1003;
  std::vector<double> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (index_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = u(rng);
    b[static_cast<std::size_t>(i)] = u(rng);
  }

  const unsigned nch = 4;
  // Reference: chunk partials summed in index order, serially.
  double expected = 0.0;
  {
    const index_t base = n / nch, rem = n % nch;
    std::vector<double> part(nch, 0.0);
    for (index_t c = 0; c < static_cast<index_t>(nch); ++c) {
      const index_t r0 = c * base + std::min(c, rem);
      const index_t r1 = r0 + base + (c < rem ? 1 : 0);
      part[static_cast<std::size_t>(c)] = dot_range(a.data(), b.data(), r0, r1);
    }
    for (unsigned c = 0; c < nch; ++c) expected += part[c];
  }

  for (int run = 0; run < 3; ++run) {
    Runtime rt(4);
    TaskBatch tb(rt);
    BatchOps ops(tb, n, nch);
    double got = 0.0, scaled = 0.0;
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    double* yd = y.data();
    const double* ad = a.data();
    ops.dot(a.data(), b.data(), &got);
    // transform + axpy_at chain on the scalar produced in-batch.
    ops.transform({ad}, yd, /*accumulate=*/false,
                  [yd, ad](index_t r0, index_t r1) {
                    for (index_t i = r0; i < r1; ++i) yd[i] = 2.0 * ad[i];
                  });
    ops.axpy_at(&got, -1.0, a.data(), yd);
    ops.dot(yd, b.data(), &scaled);
    ops.run();
    EXPECT_EQ(got, expected);  // bitwise
    // y = 2a - got*a, so <y, b> = (2 - got) * <a, b> up to chunk summation --
    // just require run-to-run determinism here.
    static double first_scaled = 0.0;
    if (run == 0)
      first_scaled = scaled;
    else
      EXPECT_EQ(scaled, first_scaled);
  }
}

}  // namespace
}  // namespace feir
