// Unit tests for the OmpSs-like dataflow runtime: dependency semantics
// (RAW, WAR, WAW), priority ordering, concurrency, nested submission, and
// the state-time accounting used for Table 3.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/trace.hpp"

namespace feir {
namespace {

TEST(Runtime, RunsAllTasks) {
  Runtime rt(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    rt.submit([&] { count.fetch_add(1); }, {});
  rt.taskwait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(rt.tasks_executed(), 100u);
}

TEST(Runtime, RawDependencyOrders) {
  Runtime rt(4);
  int data = 0;
  std::atomic<int> observed{-1};
  rt.submit([&] { data = 42; }, {out(&data)});
  rt.submit([&] { observed = data; }, {in(&data)});
  rt.taskwait();
  EXPECT_EQ(observed.load(), 42);
}

TEST(Runtime, ChainOfInOutIsSequential) {
  Runtime rt(8);
  long long x = 0;
  for (int i = 0; i < 50; ++i)
    rt.submit([&x] { x = x * 2 + 1; }, {inout(&x)});
  rt.taskwait();
  // x = 2^50 - 1 only if strictly sequential.
  EXPECT_EQ(x, (1LL << 50) - 1);
}

TEST(Runtime, WarDependencyProtectsReaders) {
  Runtime rt(8);
  int data = 7;
  std::vector<int> reads(20, 0);
  std::atomic<int> done_reads{0};
  rt.submit([&] { data = 7; }, {out(&data)});
  for (int i = 0; i < 20; ++i)
    rt.submit(
        [&, i] {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          reads[static_cast<std::size_t>(i)] = data;
          done_reads.fetch_add(1);
        },
        {in(&data)});
  rt.submit([&] { data = 99; }, {out(&data)});  // WAR: must wait for readers
  rt.taskwait();
  for (int v : reads) EXPECT_EQ(v, 7);
  EXPECT_EQ(data, 99);
}

TEST(Runtime, IndependentKeysRunConcurrently) {
  Runtime rt(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  int a = 0, b = 0, c = 0, d = 0;
  auto body = [&] {
    const int now = concurrent.fetch_add(1) + 1;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    concurrent.fetch_sub(1);
  };
  rt.submit(body, {out(&a)});
  rt.submit(body, {out(&b)});
  rt.submit(body, {out(&c)});
  rt.submit(body, {out(&d)});
  rt.taskwait();
  EXPECT_GE(peak.load(), 2);  // at least some overlap on 4 workers
}

TEST(Runtime, PriorityOrdersReadyTasksOnSingleWorker) {
  Runtime rt(1);
  std::vector<int> order;
  int gate = 0;
  // Block the single worker so that all later tasks are ready simultaneously.
  rt.submit([&] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); },
            {out(&gate)});
  for (int i = 0; i < 3; ++i)
    rt.submit([&order, i] { order.push_back(i); }, {in(&gate)}, /*priority=*/0);
  rt.submit([&order] { order.push_back(99); }, {in(&gate)}, /*priority=*/5);
  rt.taskwait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 99);  // highest priority first
  EXPECT_EQ(order[1], 0);   // then FIFO among equals
  EXPECT_EQ(order[2], 1);
}

TEST(Runtime, NestedSubmissionWorks) {
  Runtime rt(4);
  std::atomic<int> total{0};
  rt.submit(
      [&] {
        for (int i = 0; i < 10; ++i)
          rt.submit([&] { total.fetch_add(1); }, {});
      },
      {});
  rt.taskwait();
  EXPECT_EQ(total.load(), 10);
}

TEST(Runtime, TaskwaitIsReusable) {
  Runtime rt(2);
  int x = 0;
  rt.submit([&] { x = 1; }, {out(&x)});
  rt.taskwait();
  EXPECT_EQ(x, 1);
  rt.submit([&] { x = 2; }, {inout(&x)});
  rt.taskwait();
  EXPECT_EQ(x, 2);
}

TEST(Runtime, PerBlockKeysAllowPartialOverlap) {
  Runtime rt(4);
  std::vector<int> v(4, 0);
  // writers on (v, i) then readers on (v, i): only same-index pairs order.
  std::atomic<int> sum{0};
  for (int i = 0; i < 4; ++i)
    rt.submit([&v, i] { v[static_cast<std::size_t>(i)] = i + 1; }, {out(v.data(), i)});
  for (int i = 0; i < 4; ++i)
    rt.submit([&, i] { sum.fetch_add(v[static_cast<std::size_t>(i)]); },
              {in(v.data(), i)});
  rt.taskwait();
  EXPECT_EQ(sum.load(), 1 + 2 + 3 + 4);
}

TEST(Runtime, StateTimesAccumulateAndReset) {
  Runtime rt(2);
  for (int i = 0; i < 8; ++i)
    rt.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }, {});
  rt.taskwait();
  auto s = rt.state_times();
  EXPECT_GT(s.useful, 0.02);  // 8 x 5ms over 2 workers >= 20ms useful
  rt.reset_state_times();
  auto z = rt.state_times();
  EXPECT_EQ(z.useful, 0.0);
}

TEST(Runtime, ManyTasksStress) {
  Runtime rt(8);
  std::atomic<long> sum{0};
  int key = 0;
  for (int i = 0; i < 5000; ++i) {
    if (i % 10 == 0)
      rt.submit([&] { sum.fetch_add(1); }, {inout(&key)});
    else
      rt.submit([&] { sum.fetch_add(1); }, {});
  }
  rt.taskwait();
  EXPECT_EQ(sum.load(), 5000);
}

TEST(Tracer, RecordsTaskExecutions) {
  TaskTracer tracer;
  tracer.reset();
  Runtime rt(2);
  rt.set_tracer(&tracer);
  for (int i = 0; i < 6; ++i)
    rt.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }, {},
              0, i % 2 == 0 ? "q" : "r1");
  rt.taskwait();
  const auto evs = tracer.events();
  ASSERT_EQ(evs.size(), 6u);
  for (const auto& e : evs) {
    EXPECT_LT(e.begin_s, e.end_s);
    EXPECT_LT(e.worker, 2u);
    EXPECT_TRUE(e.name == "q" || e.name == "r1");
  }
  // Sorted by begin time.
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_LE(evs[i - 1].begin_s, evs[i].begin_s);
}

TEST(Tracer, RenderPaintsLanesAndUppercasesRecovery) {
  TaskTracer tracer;
  tracer.reset();
  tracer.record(0, "q", 0.0, 0.5);
  tracer.record(1, "r1", 0.25, 0.75);
  const std::string pic = tracer.render(40);
  EXPECT_NE(pic.find("T0 |"), std::string::npos);
  EXPECT_NE(pic.find('q'), std::string::npos);
  EXPECT_NE(pic.find('R'), std::string::npos);  // recovery upper-cased
  EXPECT_EQ(pic.find("r1"), std::string::npos);
}

TEST(Tracer, EmptyTraceRendersGracefully) {
  TaskTracer tracer;
  tracer.reset();
  EXPECT_EQ(tracer.render(), "(no events)\n");
}

TEST(Runtime, TasksPendingTracksInFlightWork) {
  Runtime rt(2);
  EXPECT_EQ(rt.tasks_pending(), 0u);
  std::atomic<bool> release{false};
  rt.submit([&] {
    while (!release.load()) std::this_thread::yield();
  }, {});
  EXPECT_GE(rt.tasks_pending(), 1u);  // blocked task is still in flight
  release = true;
  rt.taskwait();
  EXPECT_EQ(rt.tasks_pending(), 0u);
}

TEST(Runtime, DiamondDependency) {
  Runtime rt(4);
  int a = 0, b1 = 0, b2 = 0;
  std::atomic<int> final_val{0};
  rt.submit([&] { a = 1; }, {out(&a)});
  rt.submit([&] { b1 = a + 1; }, {in(&a), out(&b1)});
  rt.submit([&] { b2 = a + 2; }, {in(&a), out(&b2)});
  rt.submit([&] { final_val = b1 + b2; }, {in(&b1), in(&b2)});
  rt.taskwait();
  EXPECT_EQ(final_val.load(), 5);
}

}  // namespace
}  // namespace feir
