// Table-driven tests for the strict numeric parsers (support/parse.hpp):
// the trust-boundary replacement for atoi/atof in the CLI tools.  Every
// rejection class the header promises — empty, whitespace, trailing junk,
// NaN/±inf (spelled or via overflow), fractional integers, signed wraps —
// gets a row here.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "support/parse.hpp"

namespace feir {
namespace {

struct DoubleCase {
  const char* name;
  std::string in;
  bool ok;
  double want;  // only when ok
};

TEST(ParseDouble, Table) {
  const DoubleCase cases[] = {
      {"plain", "1.5", true, 1.5},
      {"negative", "-2", true, -2.0},
      {"explicit plus", "+3.25", true, 3.25},
      {"exponent", "1e-9", true, 1e-9},
      {"big exponent in range", "1e308", true, 1e308},
      {"zero", "0", true, 0.0},
      {"negative zero", "-0.0", true, -0.0},
      {"subnormal underflow", "1e-320", true, 1e-320},
      {"hex float", "0x1p3", true, 8.0},
      {"empty", "", false, 0},
      {"spaces only", "   ", false, 0},
      {"leading space", " 1", false, 0},
      {"trailing space", "1 ", false, 0},
      {"trailing junk", "1.5x", false, 0},
      {"two numbers", "1 2", false, 0},
      {"alpha", "abc", false, 0},
      {"bare minus", "-", false, 0},
      {"bare dot", ".", false, 0},
      {"nan", "nan", false, 0},
      {"uppercase nan", "NAN", false, 0},
      {"nan with payload", "nan(7)", false, 0},
      {"inf", "inf", false, 0},
      {"negative inf", "-inf", false, 0},
      {"infinity", "infinity", false, 0},
      {"overflow to inf", "1e5000", false, 0},
      {"negative overflow", "-1e5000", false, 0},
      {"embedded nul terminator survives", std::string("1\0 2", 4), false, 0},
  };
  for (const DoubleCase& c : cases) {
    double v = -12345.0;
    const bool got = parse_double(c.in, &v);
    EXPECT_EQ(got, c.ok) << c.name;
    if (c.ok && got) {
      EXPECT_EQ(v, c.want) << c.name;
    } else {
      EXPECT_EQ(v, -12345.0) << c.name << ": *out must be untouched on failure";
    }
  }
}

struct IntCase {
  const char* name;
  std::string in;
  bool ok;
  long long want;
};

TEST(ParseInt, Table) {
  const IntCase cases[] = {
      {"plain", "42", true, 42},
      {"negative", "-17", true, -17},
      {"zero", "0", true, 0},
      {"int64 max", "9223372036854775807", true, 9223372036854775807LL},
      {"int64 min", "-9223372036854775808", true, INT64_MIN},
      {"leading zeros", "007", true, 7},
      {"empty", "", false, 0},
      {"alpha", "abc", false, 0},
      {"fraction", "1.5", false, 0},
      {"trailing junk", "12x", false, 0},
      {"leading space", " 12", false, 0},
      {"overflow", "9223372036854775808", false, 0},
      {"underflow", "-9223372036854775809", false, 0},
      {"way overflow", "99999999999999999999999999", false, 0},
      {"hex rejected", "0x10", false, 0},
      {"exponent rejected", "1e3", false, 0},
  };
  for (const IntCase& c : cases) {
    long long v = -999;
    const bool got = parse_int(c.in, &v);
    EXPECT_EQ(got, c.ok) << c.name;
    if (c.ok && got) EXPECT_EQ(v, c.want) << c.name;
    if (!c.ok) EXPECT_EQ(v, -999) << c.name;
  }
}

struct U64Case {
  const char* name;
  std::string in;
  bool ok;
  std::uint64_t want;
};

TEST(ParseU64, Table) {
  const U64Case cases[] = {
      {"plain", "42", true, 42},
      {"zero", "0", true, 0},
      {"uint64 max", "18446744073709551615", true, UINT64_MAX},
      {"negative wraps rejected", "-1", false, 0},
      {"negative zero rejected", "-0", false, 0},
      {"overflow", "18446744073709551616", false, 0},
      {"empty", "", false, 0},
      {"alpha", "seed", false, 0},
      {"trailing junk", "1up", false, 0},
      {"fraction", "3.0", false, 0},
  };
  for (const U64Case& c : cases) {
    std::uint64_t v = 777;
    const bool got = parse_u64(c.in, &v);
    EXPECT_EQ(got, c.ok) << c.name;
    if (c.ok && got) EXPECT_EQ(v, c.want) << c.name;
    if (!c.ok) EXPECT_EQ(v, 777u) << c.name;
  }
}

}  // namespace
}  // namespace feir
