// Tests of the executed distributed resilient CG (§3.4): rank-count
// invariance, agreement with the sequential solver, and recovery under
// per-rank page losses.
#include <gtest/gtest.h>

#include "distsim/partition.hpp"
#include "distsim/spmd.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

TEST(SpmdCg, PagePartitionMatchesSharedSlabMath) {
  // The per-rank fault domains must cover exactly the page slabs the shared
  // RowPartition math assigns — SpmdCg uses partition.hpp directly now, so
  // this locks the two against re-drifting into private copies.
  TestbedProblem p = make_testbed("ecology2", 0.12);
  const index_t ranks = 5;
  SpmdCgOptions opts;
  opts.ranks = ranks;
  opts.block_rows = 64;
  SpmdCg solver(p.A, p.b.data(), opts);

  const BlockLayout layout(p.A.n, 64);
  const RowPartition pages(layout.num_blocks(), ranks);
  for (index_t r = 0; r < ranks; ++r) {
    ProtectedRegion* reg = solver.domain(r).find("x");
    ASSERT_NE(reg, nullptr);
    EXPECT_EQ(reg->layout.num_blocks(), pages.rows(r)) << "rank " << r;
    const index_t row0 = layout.begin(pages.begin(r));
    const index_t row1 = layout.end(pages.end(r) - 1);
    EXPECT_EQ(reg->n, row1 - row0) << "rank " << r;
  }
}

class RankSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(RankSweep, MatchesSequentialCg) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  SpmdCgOptions opts;
  opts.ranks = GetParam();
  opts.method = Method::Ideal;
  opts.block_rows = 64;
  opts.tol = 1e-10;
  SpmdCg solver(p.A, p.b.data(), opts);
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = solver.solve(x.data());
  ASSERT_TRUE(r.converged);

  std::vector<double> xs(x.size(), 0.0);
  SolveOptions so;
  so.tol = 1e-10;
  const SolveResult ref = cg_solve(p.A, p.b.data(), xs.data(), so);
  ASSERT_TRUE(ref.converged);
  EXPECT_NEAR(static_cast<double>(r.iterations), static_cast<double>(ref.iterations),
              0.05 * static_cast<double>(ref.iterations) + 3.0);
  for (index_t i = 0; i < p.A.n; i += 13)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xs[static_cast<std::size_t>(i)], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values<index_t>(1, 2, 4, 7),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(SpmdCg, FeirSurvivesLossesOnSeveralRanks) {
  TestbedProblem p = make_testbed("ecology2", 0.15);
  SpmdCgOptions opts;
  opts.ranks = 4;
  opts.method = Method::Feir;
  opts.block_rows = 64;
  opts.tol = 1e-9;

  SpmdCg* sp = nullptr;
  Rng rng(7);
  int injected = 0;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (injected < 4 && rec.iter > 0 && rec.iter % 30 == 0) {
      const auto rank = static_cast<index_t>(rng.uniform_int(4));
      auto [region, block] = sp->domain(rank).pick_uniform(rng);
      if (region != nullptr) region->lose_block(block);
      ++injected;
    }
  };
  SpmdCg solver(p.A, p.b.data(), opts);
  sp = &solver;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = solver.solve(x.data());
  EXPECT_GE(injected, 1);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
  const auto& s = r.stats;
  EXPECT_GT(s.lincomb_recoveries + s.diag_solves + s.spmv_recomputes +
                s.residual_recomputes + s.x_recoveries + s.redo_updates,
            0u);
}

TEST(SpmdCg, FeirConvergenceParityWithIdeal) {
  TestbedProblem p = make_testbed("thermal2", 0.12);
  SpmdCgOptions opts;
  opts.ranks = 3;
  opts.method = Method::Ideal;
  opts.block_rows = 64;
  opts.tol = 1e-9;
  SpmdCg ideal(p.A, p.b.data(), opts);
  std::vector<double> x0(static_cast<std::size_t>(p.A.n), 0.0);
  const auto ri = ideal.solve(x0.data());
  ASSERT_TRUE(ri.converged);

  opts.method = Method::Feir;
  SpmdCg* sp = nullptr;
  bool fired = false;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (!fired && rec.iter == ri.iterations / 2) {
      ProtectedRegion* reg = sp->domain(1).find("x");
      reg->lose_block(0);
      fired = true;
    }
  };
  SpmdCg feir(p.A, p.b.data(), opts);
  sp = &feir;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = feir.solve(x.data());
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, ri.iterations + ri.iterations / 10 + 6);
}

TEST(SpmdCg, LossyRestartsGlobally) {
  TestbedProblem p = make_testbed("ecology2", 0.12);
  SpmdCgOptions opts;
  opts.ranks = 4;
  opts.method = Method::Lossy;
  opts.block_rows = 64;
  opts.tol = 1e-9;
  SpmdCg* sp = nullptr;
  bool fired = false;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (!fired && rec.iter == 40) {
      sp->domain(2).find("x")->lose_block(1);
      fired = true;
    }
  };
  SpmdCg solver(p.A, p.b.data(), opts);
  sp = &solver;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = solver.solve(x.data());
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.stats.restarts, 1u);
  EXPECT_GE(r.stats.x_recoveries, 1u);
}

TEST(SpmdCg, TrivialZeroesAndRecoversEventually) {
  TestbedProblem p = make_testbed("qa8fm", 0.2);
  SpmdCgOptions opts;
  opts.ranks = 2;
  opts.method = Method::Trivial;
  opts.block_rows = 64;
  opts.tol = 1e-9;
  SpmdCg* sp = nullptr;
  bool fired = false;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (!fired && rec.iter == 3) {
      sp->domain(0).find("g")->lose_block(0);
      fired = true;
    }
  };
  SpmdCg solver(p.A, p.b.data(), opts);
  sp = &solver;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = solver.solve(x.data());
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.stats.zeroed_blocks, 1u);
}

}  // namespace
}  // namespace feir
