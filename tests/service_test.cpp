// Tests for src/service/: the strict JSON reader, the request parser's
// malformed-frame table (mirroring the mmio hardening style: every bad frame
// produces a clean error and never kills the connection), and a live
// in-process server exercised over real unix-domain sockets -- admission
// backpressure, per-request deadlines, cancellation, clean shutdown with
// solves in flight, and the QoS layer's protocol conformance (auth gating,
// opaque credential failures, per-tenant rate/quota verdicts, tenant stats).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace feir::service {
namespace {

// ------------------------------------------------------------- json ----

TEST(Json, ParsesScalarsStringsAndNesting) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse("{\"a\": [1, -2.5e3, true, false, null], \"b\": {\"c\": \"x\"}}",
                         &v, &err))
      << err;
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 5u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, -2500.0);
  EXPECT_TRUE(a->items[2].boolean);
  EXPECT_TRUE(a->items[4].is_null());
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("c")->string, "x");
}

TEST(Json, DecodesEscapesAndSurrogatePairs) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse("\"a\\n\\t\\\"\\\\ \\u00e9 \\ud83d\\ude00\"", &v, &err)) << err;
  EXPECT_EQ(v.string, "a\n\t\"\\ \xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(Json, AcceptsRawMultibyteUtf8) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse("\"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x8e\x89\"", &v, &err))
      << err;
  EXPECT_EQ(v.string, "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x8e\x89");
}

struct BadJsonCase {
  const char* name;
  std::string text;
  const char* why_substr;  // expected fragment of the error message
};

TEST(Json, MalformedInputsFailWithPositionedErrors) {
  const std::vector<BadJsonCase> cases = {
      {"empty", "", "unexpected end"},
      {"truncated object", "{\"a\": 1", "unterminated object"},
      {"truncated array", "[1, 2", "unterminated array"},
      {"truncated string", "\"abc", "unterminated string"},
      {"trailing garbage", "{} x", "trailing bytes"},
      {"two values", "1 2", "trailing bytes"},
      {"bare word", "nope", "expected 'null'"},
      {"leading zero", "01", "trailing bytes"},
      {"bare minus", "-", "truncated number"},
      {"missing fraction digits", "1.", "digit after decimal point"},
      {"missing exponent digits", "1e+", "digit in exponent"},
      {"nan keyword", "NaN", "unexpected character"},
      {"single quotes", "{'a': 1}", "expected string"},
      {"unquoted key", "{a: 1}", "expected string"},
      {"missing colon", "{\"a\" 1}", "expected ':'"},
      {"duplicate key", "{\"a\": 1, \"a\": 2}", "duplicate object key"},
      {"unknown escape", "\"\\q\"", "unknown escape"},
      {"bad hex escape", "\"\\u12zz\"", "bad hex digit"},
      {"lone high surrogate", "\"\\ud83d\"", "lone high surrogate"},
      {"lone low surrogate", "\"\\ude00\"", "lone low surrogate"},
      {"control char in string", std::string("\"a\x01") + "b\"", "control character"},
      {"bare 0x80 byte", std::string("\"a\x80") + "b\"", "invalid UTF-8 byte"},
      {"truncated utf8 pair", std::string("\"\xc3"), "truncated UTF-8"},
      {"bad continuation", std::string("\"\xc3\x41\""), "continuation byte"},
      {"overlong encoding", std::string("\"\xc0\xaf\""), "overlong"},
      {"raw surrogate utf8", std::string("\"\xed\xa0\x80\""), "surrogate"},
      {"past U+10FFFF", std::string("\"\xf4\x90\x80\x80\""), "past U+10FFFF"},
      {"depth bomb", std::string(64, '[') + std::string(64, ']'), "nesting too deep"},
  };
  for (const BadJsonCase& c : cases) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(json_parse(c.text, &v, &err)) << c.name;
    EXPECT_NE(err.find(c.why_substr), std::string::npos)
        << c.name << ": got error \"" << err << "\"";
    EXPECT_NE(err.find("byte "), std::string::npos) << c.name << ": offset missing";
  }
}

// --------------------------------------------------- request parsing ----

TEST(Protocol, ParsesAFullSolveRequest) {
  const ParsedRequest p = parse_request(
      "{\"op\": \"solve\", \"id\": \"r1\", \"matrix\": \"thermal2\", \"scale\": 0.2,"
      " \"solver\": \"cg\", \"method\": \"afeir\", \"precond\": \"blockjacobi\","
      " \"format\": \"sell\", \"tol\": 1e-9, \"max_iter\": 5000, \"seed\": 42,"
      " \"mtbe_iters\": 75, \"block_rows\": 128, \"deadline_ms\": 1500,"
      " \"stream\": true}");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.req.op, Op::Solve);
  EXPECT_EQ(p.req.id, "r1");
  EXPECT_EQ(p.req.spec.matrix, "thermal2");
  EXPECT_EQ(p.req.spec.scale, 0.2);
  EXPECT_EQ(p.req.spec.solver, campaign::SolverKind::Cg);
  EXPECT_EQ(p.req.spec.method, Method::Afeir);
  EXPECT_EQ(p.req.spec.precond, campaign::PrecondKind::BlockJacobi);
  EXPECT_EQ(p.req.spec.format, SparseFormat::Sell);
  EXPECT_EQ(p.req.spec.tol, 1e-9);
  EXPECT_EQ(p.req.spec.max_iter, 5000);
  EXPECT_EQ(p.req.spec.seed, 42u);
  EXPECT_EQ(p.req.spec.inject.kind, campaign::InjectionKind::IterationMtbe);
  EXPECT_EQ(p.req.spec.inject.mean_iters, 75.0);
  EXPECT_EQ(p.req.spec.block_rows, 128);
  EXPECT_EQ(p.req.deadline_ms, 1500.0);
  EXPECT_TRUE(p.req.stream);
  EXPECT_EQ(p.req.spec.threads, 1u) << "service solves are always single-threaded";
}

TEST(Protocol, DefaultsAreFaultFreeAndDeadlineless) {
  const ParsedRequest p = parse_request("{\"op\": \"solve\", \"id\": \"x\"}");
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.req.spec.inject.kind, campaign::InjectionKind::None);
  EXPECT_EQ(p.req.deadline_ms, 0.0);
  EXPECT_FALSE(p.req.stream);
}

struct BadFrameCase {
  const char* name;
  std::string line;
  const char* code;
  const char* msg_substr;
};

// The malformed-frame table, mirroring the mmio hardening style: every entry
// must produce the right error code with a reason, never a crash or an
// accepted request.
std::vector<BadFrameCase> bad_frames() {
  return {
      {"not json", "hello", "bad_frame", "unexpected character"},
      {"truncated frame", "{\"op\": \"solve\", \"id\"", "bad_frame", "byte "},
      {"bad utf8 in value", std::string("{\"op\": \"ping\", \"id\": \"a\x80\"}"),
       "bad_frame", "invalid UTF-8"},
      {"array frame", "[1, 2, 3]", "bad_request", "must be a JSON object"},
      {"number frame", "42", "bad_request", "must be a JSON object"},
      {"missing op", "{\"id\": \"a\"}", "bad_request", "missing required field op"},
      {"non-string op", "{\"op\": 3}", "bad_request", "op must be a string"},
      {"unknown op", "{\"op\": \"fly\"}", "bad_request", "unknown op"},
      {"solve without id", "{\"op\": \"solve\"}", "bad_request", "requires an id"},
      {"cancel without id", "{\"op\": \"cancel\"}", "bad_request", "requires an id"},
      {"empty id", "{\"op\": \"solve\", \"id\": \"\"}", "bad_request", "not be empty"},
      {"oversized id",
       "{\"op\": \"solve\", \"id\": \"" + std::string(200, 'x') + "\"}", "bad_request",
       "longer than 128"},
      {"unknown field", "{\"op\": \"solve\", \"id\": \"a\", \"threads\": 8}",
       "bad_request", "unknown field \"threads\""},
      {"solve field on ping", "{\"op\": \"ping\", \"matrix\": \"x\"}", "bad_request",
       "unknown field \"matrix\" for op ping"},
      {"duplicate field", "{\"op\": \"ping\", \"id\": \"a\", \"id\": \"b\"}",
       "bad_frame", "duplicate object key"},
      {"wrong type matrix", "{\"op\": \"solve\", \"id\": \"a\", \"matrix\": 7}",
       "bad_request", "matrix must be a string"},
      {"empty matrix", "{\"op\": \"solve\", \"id\": \"a\", \"matrix\": \"\"}",
       "bad_request", "matrix must not be empty"},
      {"unknown solver", "{\"op\": \"solve\", \"id\": \"a\", \"solver\": \"qr\"}",
       "bad_request", "unknown solver"},
      {"unknown method", "{\"op\": \"solve\", \"id\": \"a\", \"method\": \"magic\"}",
       "bad_request", "unknown method"},
      {"unknown format", "{\"op\": \"solve\", \"id\": \"a\", \"format\": \"coo\"}",
       "bad_request", "unknown format"},
      {"zero tol", "{\"op\": \"solve\", \"id\": \"a\", \"tol\": 0}", "bad_request",
       "tol must be in"},
      {"huge scale", "{\"op\": \"solve\", \"id\": \"a\", \"scale\": 100}",
       "bad_request", "scale must be in"},
      {"fractional max_iter", "{\"op\": \"solve\", \"id\": \"a\", \"max_iter\": 1.5}",
       "bad_request", "max_iter must be an integer"},
      {"negative max_iter", "{\"op\": \"solve\", \"id\": \"a\", \"max_iter\": -1}",
       "bad_request", "max_iter must be an integer"},
      {"negative mtbe", "{\"op\": \"solve\", \"id\": \"a\", \"mtbe_iters\": -5}",
       "bad_request", "mtbe_iters must be >= 0"},
      {"seed at 2^64",
       "{\"op\": \"solve\", \"id\": \"a\", \"seed\": 18446744073709551616}",
       "bad_request", "seed must be an integer"},
      {"negative deadline", "{\"op\": \"solve\", \"id\": \"a\", \"deadline_ms\": -1}",
       "bad_request", "deadline_ms must be > 0"},
      {"zero deadline is not a sentinel",
       "{\"op\": \"solve\", \"id\": \"a\", \"deadline_ms\": 0}", "bad_request",
       "omit the field for no deadline"},
      {"nrhs on plain solve", "{\"op\": \"solve\", \"id\": \"a\", \"nrhs\": 4}",
       "bad_request", "nrhs is a solve_batch field"},
      {"zero nrhs", "{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 0}",
       "bad_request", "nrhs must be an integer"},
      {"oversized nrhs", "{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 33}",
       "bad_request", "nrhs must be an integer"},
      {"fractional nrhs", "{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 2.5}",
       "bad_request", "nrhs must be an integer"},
      {"batch with gmres",
       "{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 4, \"solver\": \"gmres\"}",
       "bad_request", "solver \"cg\" only"},
      {"batch with precond",
       "{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 4, \"precond\": \"jacobi\"}",
       "bad_request", "precond \"none\" only"},
      {"batch with lossy",
       "{\"op\": \"solve_batch\", \"id\": \"a\", \"nrhs\": 4, \"method\": \"lossy\"}",
       "bad_request", "not trivial/lossy"},
      {"cancel col out of range", "{\"op\": \"cancel\", \"id\": \"a\", \"col\": 99}",
       "bad_request", "col must be an integer"},
      {"cancel col negative", "{\"op\": \"cancel\", \"id\": \"a\", \"col\": -1}",
       "bad_request", "col must be an integer"},
      {"col on solve", "{\"op\": \"solve\", \"id\": \"a\", \"col\": 1}",
       "bad_request", "unknown field \"col\""},
      {"string stream", "{\"op\": \"solve\", \"id\": \"a\", \"stream\": \"yes\"}",
       "bad_request", "stream must be a boolean"},
      {"tiny block_rows", "{\"op\": \"solve\", \"id\": \"a\", \"block_rows\": 4}",
       "bad_request", "block_rows must be an integer"},
      {"auth without tenant", "{\"op\": \"auth\", \"key\": \"k\"}", "bad_request",
       "auth requires a tenant field"},
      {"auth without key", "{\"op\": \"auth\", \"tenant\": \"t\"}", "bad_request",
       "auth requires a key field"},
      {"auth empty tenant", "{\"op\": \"auth\", \"tenant\": \"\", \"key\": \"k\"}",
       "bad_request", "tenant must not be empty"},
      {"auth non-string key", "{\"op\": \"auth\", \"tenant\": \"t\", \"key\": 7}",
       "bad_request", "key must be a string"},
      {"auth oversized key",
       "{\"op\": \"auth\", \"tenant\": \"t\", \"key\": \"" + std::string(200, 'k') +
           "\"}",
       "bad_request", "key longer than 128 bytes"},
      {"auth with solve fields",
       "{\"op\": \"auth\", \"tenant\": \"t\", \"key\": \"k\", \"matrix\": \"x\"}",
       "bad_request", "unknown field \"matrix\" for op auth"},
      {"tenant field on solve",
       "{\"op\": \"solve\", \"id\": \"a\", \"tenant\": \"t\"}", "bad_request",
       "unknown field \"tenant\""},
  };
}

TEST(Protocol, MalformedFrameTableYieldsCleanErrors) {
  for (const BadFrameCase& c : bad_frames()) {
    const ParsedRequest p = parse_request(c.line);
    EXPECT_FALSE(p.ok) << c.name;
    EXPECT_EQ(p.code, c.code) << c.name << ": " << p.message;
    EXPECT_NE(p.message.find(c.msg_substr), std::string::npos)
        << c.name << ": got \"" << p.message << "\"";
  }
}

TEST(Protocol, ParsesASolveBatchRequest) {
  const ParsedRequest p = parse_request(
      "{\"op\": \"solve_batch\", \"id\": \"b1\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"nrhs\": 8, \"tol\": 1e-8, \"mtbe_iters\": 50,"
      " \"stream\": true}");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.req.op, Op::SolveBatch);
  EXPECT_EQ(p.req.spec.nrhs, 8);
  EXPECT_EQ(p.req.spec.solver, campaign::SolverKind::Cg);
  EXPECT_TRUE(p.req.stream);
  EXPECT_EQ(p.req.spec.threads, 1u);
}

TEST(Protocol, CancelWithColumnParses) {
  const ParsedRequest p = parse_request("{\"op\": \"cancel\", \"id\": \"b1\", \"col\": 3}");
  ASSERT_TRUE(p.ok) << p.message;
  EXPECT_EQ(p.req.op, Op::Cancel);
  EXPECT_EQ(p.req.col, 3);
  const ParsedRequest whole = parse_request("{\"op\": \"cancel\", \"id\": \"b1\"}");
  ASSERT_TRUE(whole.ok);
  EXPECT_EQ(whole.req.col, -1) << "absent col = cancel the whole request";
}

TEST(Protocol, RejectedRequestsStillCarryTheIdWhenRecoverable) {
  const ParsedRequest p =
      parse_request("{\"op\": \"solve\", \"id\": \"req-9\", \"tol\": -1}");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.req.id, "req-9") << "error events must be correlatable";
}

// ------------------------------------------------------- live server ----

/// Starts a unix-socket server for one test and connects a client to it.
struct LiveServer {
  std::string sock;
  Server server;
  Client client;

  explicit LiveServer(ServerOptions opts = {}, const char* tag = "t")
      : sock("/tmp/feir_service_test_" + std::string(tag) + "_" +
             std::to_string(::getpid()) + ".sock"),
        server([&] {
          opts.unix_path = sock;
          if (opts.workers == 0) opts.workers = 2;
          return opts;
        }()) {
    std::string err;
    EXPECT_TRUE(server.start(&err)) << err;
    EXPECT_TRUE(client.connect_unix(sock, &err)) << err;
  }
};

/// Parses an event line and returns the value of a string field ("" when
/// absent), for assertions on codes/events.
std::string field(const std::string& line, const char* key) {
  JsonValue v;
  std::string err;
  if (!json_parse(line, &v, &err)) return "<unparseable: " + err + ">";
  const JsonValue* f = v.find(key);
  if (f == nullptr) return "";
  if (f->is_string()) return f->string;
  if (f->is_bool()) return f->boolean ? "true" : "false";
  if (f->is_number()) return std::to_string(f->number);
  return "<non-scalar>";
}

TEST(ServiceLive, PingPongAndStats) {
  LiveServer live({}, "ping");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"p\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong");
  EXPECT_EQ(field(reply, "id"), "p");

  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"stats\", \"id\": \"s\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "stats");
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(reply, &v, &err)) << err;
  EXPECT_NE(v.find("cache"), nullptr);
  EXPECT_NE(v.find("queue_depth"), nullptr);
}

TEST(ServiceLive, SolveConvergesAndRepeatsByteIdentically) {
  LiveServer live({}, "solve");
  const std::string req =
      "{\"op\": \"solve\", \"id\": \"r\", \"matrix\": \"ecology2\", \"scale\": 0.1,"
      " \"tol\": 1e-8, \"mtbe_iters\": 35, \"seed\": 9, \"format\": \"sell\"}";
  std::string first, second;
  ASSERT_TRUE(live.client.roundtrip(req, &first));
  EXPECT_EQ(field(first, "event"), "result") << first;
  EXPECT_EQ(field(first, "converged"), "true") << first;
  // Second run hits the warm cache and must be byte-identical.
  ASSERT_TRUE(live.client.roundtrip(req, &second));
  EXPECT_EQ(first, second);
}

TEST(ServiceLive, MalformedFramesGetErrorsAndTheConnectionSurvives) {
  ServerOptions opts;
  opts.max_frame = 1024;  // small so the oversized case is cheap
  LiveServer live(opts, "malformed");

  // One frame of each malformed family over the live socket...
  std::vector<std::string> frames = {
      "this is not json",
      "{\"op\": \"fly\"}",
      std::string("{\"op\": \"ping\", \"id\": \"\xff\"}"),  // invalid UTF-8
      "{\"op\": \"solve\", \"id\": \"q\", \"tol\": \"tiny\"}",
      "{\"op\": \"solve\", \"id\": \"q\", \"volume\": 11}",
      "{\"op\": \"solve\", \"id\": \"q\", \"matrix\": \"no_such_matrix\"}",
      std::string(4096, ' ') + "{\"op\": \"ping\"}",  // oversized frame
  };
  for (const std::string& f : frames) {
    std::string reply;
    ASSERT_TRUE(live.client.roundtrip(f, &reply)) << f.substr(0, 40);
    EXPECT_EQ(field(reply, "event"), "error") << reply;
    EXPECT_FALSE(field(reply, "code").empty()) << reply;
  }
  // ...and the connection still serves traffic afterwards.
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"alive\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong");
}

TEST(ServiceLive, OversizedFrameReportsTheConfiguredBound) {
  ServerOptions opts;
  opts.max_frame = 512;
  LiveServer live(opts, "oversized");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"solve\", \"id\": \"big\", \"matrix\": \"" + std::string(2000, 'm') +
          "\"}",
      &reply));
  EXPECT_EQ(field(reply, "code"), "oversized_frame") << reply;
  EXPECT_NE(reply.find("512"), std::string::npos) << reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"ok\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong");
}

/// A solve that cannot finish on its own within the test timeout.
std::string endless_solve(const std::string& id, const std::string& extra = "") {
  return "{\"op\": \"solve\", \"id\": \"" + id +
         "\", \"matrix\": \"ecology2\", \"scale\": 0.1, \"tol\": 1e-300, "
         "\"max_iter\": 1000000000" + extra + "}";
}

TEST(ServiceLive, CancelStopsAnInflightSolveAndNothingWedges) {
  LiveServer live({}, "cancel");
  ASSERT_TRUE(live.client.send_line(endless_solve("victim")));
  // Give the worker a moment to start iterating, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"victim\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  EXPECT_EQ(field(reply, "found"), "true");

  // The victim's terminal event arrives promptly with code "cancelled".
  ASSERT_TRUE(live.client.recv_line(&reply));
  EXPECT_EQ(field(reply, "id"), "victim");
  EXPECT_EQ(field(reply, "code"), "cancelled") << reply;

  // Neither the connection nor the worker pool is wedged: a normal solve
  // completes on the same connection.
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"solve\", \"id\": \"after\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"tol\": 1e-8}",
      &reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
  EXPECT_EQ(field(reply, "converged"), "true");
}

TEST(ServiceLive, FileBackedMatricesAreRefusedByDefault) {
  LiveServer live({}, "files");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"solve\", \"id\": \"f\", \"matrix\": \"/etc/hosts\"}", &reply));
  EXPECT_EQ(field(reply, "code"), "bad_request") << reply;
  EXPECT_NE(reply.find("file-backed"), std::string::npos) << reply;
  // A '.' in the name routes to the file loader too; same refusal.
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"solve\", \"id\": \"g\", \"matrix\": \"sneaky.mtx\"}", &reply));
  EXPECT_EQ(field(reply, "code"), "bad_request") << reply;
}

TEST(ServiceLive, SessionCacheEvictsAtCapacityAndKeepsServing) {
  ServerOptions opts;
  opts.cache_capacity = 2;  // force churn across 3 distinct problem keys
  LiveServer live(opts, "evict");
  for (const char* scale : {"0.08", "0.1", "0.12", "0.08", "0.1"}) {
    std::string reply;
    ASSERT_TRUE(live.client.roundtrip(
        std::string("{\"op\": \"solve\", \"id\": \"s") + scale +
            "\", \"matrix\": \"ecology2\", \"scale\": " + scale +
            ", \"tol\": 1e-8}",
        &reply));
    EXPECT_EQ(field(reply, "event"), "result") << reply;
    EXPECT_EQ(field(reply, "converged"), "true");
  }
}

TEST(ServiceLive, CancelOfUnknownIdAcksNotFound) {
  LiveServer live({}, "cancelmiss");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"ghost\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  EXPECT_EQ(field(reply, "found"), "false");
}

TEST(ServiceLive, DeadlineExpiresAnUnfinishableSolve) {
  LiveServer live({}, "deadline");
  std::string reply;
  ASSERT_TRUE(
      live.client.roundtrip(endless_solve("slow", ", \"deadline_ms\": 200"), &reply));
  EXPECT_EQ(field(reply, "id"), "slow");
  EXPECT_EQ(field(reply, "code"), "deadline") << reply;
  // Connection and pool both fine afterwards.
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"ok\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong");
}

TEST(ServiceLive, DuplicateInflightIdIsRejected) {
  LiveServer live({}, "dup");
  ASSERT_TRUE(live.client.send_line(endless_solve("same")));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(endless_solve("same"), &reply));
  EXPECT_EQ(field(reply, "code"), "bad_request") << reply;
  EXPECT_NE(reply.find("in flight"), std::string::npos);
  // Clean up the long-running request.
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"same\"}", &reply));
  ASSERT_TRUE(live.client.recv_line(&reply));
  EXPECT_EQ(field(reply, "code"), "cancelled");
}

TEST(ServiceLive, AdmissionQueueBackpressureRejectsWithOverloaded) {
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  LiveServer live(opts, "backpressure");

  // First solve occupies the single worker, second fills the queue; the
  // third must be rejected immediately with "overloaded".
  ASSERT_TRUE(live.client.send_line(endless_solve("a")));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(live.client.send_line(endless_solve("b")));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(endless_solve("c"), &reply));
  EXPECT_EQ(field(reply, "id"), "c");
  EXPECT_EQ(field(reply, "code"), "overloaded") << reply;

  // Cancel both survivors; each sends its terminal event; then traffic flows.
  for (const char* id : {"a", "b"}) {
    ASSERT_TRUE(live.client.roundtrip(
        std::string("{\"op\": \"cancel\", \"id\": \"") + id + "\"}", &reply));
    EXPECT_EQ(field(reply, "event"), "cancel_ack");
    ASSERT_TRUE(live.client.recv_line(&reply));
    EXPECT_EQ(field(reply, "code"), "cancelled") << reply;
  }
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"ok\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong");
}

TEST(ServiceLive, StreamedSolveEmitsMonotoneProgressThenResult) {
  LiveServer live({}, "stream");
  ASSERT_TRUE(live.client.send_line(
      "{\"op\": \"solve\", \"id\": \"s\", \"matrix\": \"ecology2\", \"scale\": 0.1,"
      " \"tol\": 1e-8, \"mtbe_iters\": 40, \"seed\": 3, \"stream\": true}"));
  std::string line;
  long last_iter = -1;
  std::size_t progress = 0;
  while (true) {
    ASSERT_TRUE(live.client.recv_line(&line));
    const std::string event = field(line, "event");
    if (event == "progress") {
      ++progress;
      const long iter = std::strtol(field(line, "iter").c_str(), nullptr, 10);
      // Strictly increasing, not necessarily consecutive: progress frames
      // are advisory and dropped under write backpressure by design.
      EXPECT_GT(iter, last_iter) << "progress events in iteration order";
      last_iter = iter;
      continue;
    }
    ASSERT_EQ(event, "result") << line;
    break;
  }
  EXPECT_GT(progress, 10u);
  EXPECT_EQ(field(line, "converged"), "true");
}

TEST(ServiceLive, SolveBatchConvergesWithPerColumnResultsAndRepeatsByteIdentically) {
  LiveServer live({}, "batch");
  const std::string req =
      "{\"op\": \"solve_batch\", \"id\": \"b\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"nrhs\": 3, \"tol\": 1e-8, \"mtbe_iters\": 40,"
      " \"seed\": 5}";
  std::string first, second;
  ASSERT_TRUE(live.client.roundtrip(req, &first));
  EXPECT_EQ(field(first, "event"), "result") << first;
  EXPECT_EQ(field(first, "converged"), "true") << first;
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(first, &v, &err)) << err;
  EXPECT_EQ(v.find("nrhs")->number, 3.0);
  const JsonValue* cols = v.find("columns");
  ASSERT_NE(cols, nullptr) << first;
  ASSERT_TRUE(cols->is_array());
  ASSERT_EQ(cols->items.size(), 3u);
  for (const JsonValue& c : cols->items) {
    EXPECT_TRUE(c.find("converged")->boolean);
    EXPECT_GT(c.find("iterations")->number, 0.0);
  }
  // Warm-cache rerun must be byte-identical (the soak-tier contract).
  ASSERT_TRUE(live.client.roundtrip(req, &second));
  EXPECT_EQ(first, second);
}

TEST(ServiceLive, StreamedBatchProgressCarriesColumns) {
  LiveServer live({}, "batchstream");
  ASSERT_TRUE(live.client.send_line(
      "{\"op\": \"solve_batch\", \"id\": \"bs\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"nrhs\": 2, \"tol\": 1e-8, \"stream\": true}"));
  std::string line;
  bool saw_col0 = false, saw_col1 = false;
  while (true) {
    ASSERT_TRUE(live.client.recv_line(&line));
    const std::string event = field(line, "event");
    if (event == "progress") {
      const std::string col = field(line, "col");
      saw_col0 = saw_col0 || col == "0.000000";
      saw_col1 = saw_col1 || col == "1.000000";
      continue;
    }
    ASSERT_EQ(event, "result") << line;
    break;
  }
  EXPECT_TRUE(saw_col0);
  EXPECT_TRUE(saw_col1);
  EXPECT_EQ(field(line, "converged"), "true");
}

/// A batch that cannot finish on its own within the test timeout.
std::string endless_batch(const std::string& id) {
  return "{\"op\": \"solve_batch\", \"id\": \"" + id +
         "\", \"matrix\": \"ecology2\", \"scale\": 0.1, \"nrhs\": 2,"
         " \"tol\": 1e-300, \"max_iter\": 1000000000}";
}

TEST(ServiceLive, PerColumnCancelFreezesOneColumnThenWholeCancelEndsTheBatch) {
  LiveServer live({}, "colcancel");
  ASSERT_TRUE(live.client.send_line(endless_batch("cb")));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Column 1 alone: ack found, batch keeps running (no terminal event yet).
  std::string reply;
  ASSERT_TRUE(
      live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"cb\", \"col\": 1}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  EXPECT_EQ(field(reply, "found"), "true");

  // A column index beyond the batch width is not found.
  ASSERT_TRUE(
      live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"cb\", \"col\": 7}", &reply));
  EXPECT_EQ(field(reply, "found"), "false");

  // Whole-request cancel ends it; the terminal event is "cancelled".
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"cb\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  ASSERT_TRUE(live.client.recv_line(&reply));
  EXPECT_EQ(field(reply, "id"), "cb");
  EXPECT_EQ(field(reply, "code"), "cancelled") << reply;

  // Pool healthy afterwards.
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"ok\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong");
}

TEST(ServiceLive, PerColumnCancelShowsUpInTheBatchResult) {
  // One worker, occupied by an endless solve: the batch sits in the queue
  // while column 0 is cancelled, so the cancel deterministically lands
  // before the batch starts.
  ServerOptions sopts;
  sopts.workers = 1;
  LiveServer live(sopts, "colcancelresult");
  ASSERT_TRUE(live.client.send_line(endless_solve("blocker")));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(live.client.send_line(
      "{\"op\": \"solve_batch\", \"id\": \"cr\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"nrhs\": 2, \"tol\": 1e-8}"));
  std::string reply;
  ASSERT_TRUE(
      live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"cr\", \"col\": 0}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  EXPECT_EQ(field(reply, "found"), "true");
  // Release the worker; its terminal "cancelled" event comes first.
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"blocker\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  ASSERT_TRUE(live.client.recv_line(&reply));
  EXPECT_EQ(field(reply, "code"), "cancelled") << reply;

  // Now the batch runs with column 0 pre-cancelled: the result must mark
  // exactly that column cancelled and the other converged.
  ASSERT_TRUE(live.client.recv_line(&reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
  EXPECT_EQ(field(reply, "converged"), "false") << reply;
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(reply, &v, &err)) << err;
  const JsonValue* cols = v.find("columns");
  ASSERT_NE(cols, nullptr);
  ASSERT_EQ(cols->items.size(), 2u);
  EXPECT_TRUE(cols->items[1].find("converged")->boolean) << reply;
  const JsonValue* cancelled = cols->items[0].find("cancelled");
  ASSERT_NE(cancelled, nullptr) << reply;
  EXPECT_TRUE(cancelled->boolean);
}

TEST(ServiceLive, ServerStopsCleanlyWithSolvesInFlight) {
  auto live = std::make_unique<LiveServer>(ServerOptions{}, "shutdown");
  ASSERT_TRUE(live->client.send_line(endless_solve("doomed")));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // stop() cancels the in-flight solve and joins every thread; if anything
  // wedges, the per-test timeout fails the build.
  live->server.stop();
  SUCCEED();
}

TEST(ServiceLive, ClientDisconnectCancelsItsInflightWork) {
  ServerOptions opts;
  opts.workers = 1;
  LiveServer live(opts, "abandon");
  ASSERT_TRUE(live.client.send_line(endless_solve("orphan")));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  live.client.close();  // tenant walks away mid-solve

  // The single worker must become available again: a second client's solve
  // completes even though the orphan would have run forever.
  Client other;
  std::string err;
  ASSERT_TRUE(other.connect_unix(live.sock, &err)) << err;
  std::string reply;
  ASSERT_TRUE(other.roundtrip(
      "{\"op\": \"solve\", \"id\": \"next\", \"matrix\": \"ecology2\","
      " \"scale\": 0.1, \"tol\": 1e-8}",
      &reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
  EXPECT_EQ(field(reply, "converged"), "true");
}

// ------------------------------------------------------- QoS / tenants ----

/// Two-tenant ServerOptions for the QoS conformance tests.
ServerOptions qos_opts() {
  ServerOptions opts;
  qos::TenantSpec alice;
  alice.id = "alice";
  alice.key = "s3cret";
  alice.weight = 4.0;
  alice.priority = qos::TenantPriority::High;
  qos::TenantSpec bob;
  bob.id = "bob";
  bob.key = "hunter2";
  bob.priority = qos::TenantPriority::Low;
  bob.rate = 1.0;
  bob.burst = 1.0;
  bob.max_inflight = 1;
  opts.tenants = {alice, bob};
  return opts;
}

const char* kSmallSolve =
    "{\"op\": \"solve\", \"id\": \"q\", \"matrix\": \"ecology2\","
    " \"scale\": 0.1, \"tol\": 1e-8}";

TEST(ServiceQos, OpsBeforeAuthAreRefusedButPingIsNot) {
  LiveServer live(qos_opts(), "authgate");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"ping\", \"id\": \"p\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "pong") << "ping needs no auth";
  for (const char* req :
       {kSmallSolve, "{\"op\": \"stats\", \"id\": \"s\"}",
        "{\"op\": \"cancel\", \"id\": \"q\"}",
        "{\"op\": \"solve_batch\", \"id\": \"b\", \"nrhs\": 2}"}) {
    ASSERT_TRUE(live.client.roundtrip(req, &reply)) << req;
    EXPECT_EQ(field(reply, "code"), "auth_required") << reply;
  }
}

TEST(ServiceQos, BadCredentialsAreOpaqueAndCounted) {
  LiveServer live(qos_opts(), "badcred");
  std::string reply;
  // Unknown tenant and wrong key must be INDISTINGUISHABLE to the client.
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"auth\", \"id\": \"a1\", \"tenant\": \"carol\", \"key\": \"s3cret\"}",
      &reply));
  EXPECT_EQ(field(reply, "code"), "auth_failed") << reply;
  const std::string unknown_tenant_msg = field(reply, "message");
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"auth\", \"id\": \"a2\", \"tenant\": \"alice\", \"key\": \"wrong\"}",
      &reply));
  EXPECT_EQ(field(reply, "code"), "auth_failed") << reply;
  EXPECT_EQ(field(reply, "message"), unknown_tenant_msg)
      << "message must not reveal whether the tenant exists";
  // A failed auth leaves the connection usable and unauthenticated.
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "code"), "auth_required");
  EXPECT_EQ(live.server.counters().auth_failures, 2u);
}

TEST(ServiceQos, AuthBindsOnceAndUnlocksSolves) {
  LiveServer live(qos_opts(), "authok");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"auth\", \"id\": \"a\", \"tenant\": \"alice\", \"key\": \"s3cret\"}",
      &reply));
  EXPECT_EQ(field(reply, "event"), "auth_ok") << reply;
  EXPECT_EQ(field(reply, "tenant"), "alice");
  // Duplicate auth on the same connection is a schema violation, not a
  // silent re-bind.
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"auth\", \"id\": \"again\", \"tenant\": \"bob\", \"key\": \"hunter2\"}",
      &reply));
  EXPECT_EQ(field(reply, "code"), "bad_request") << reply;
  EXPECT_NE(field(reply, "message").find("already authenticated"), std::string::npos);
  // ... and the connection stays bound to alice and fully usable.
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
  EXPECT_EQ(field(reply, "converged"), "true");
}

TEST(ServiceQos, ClientAuthenticateHelperRoundTrips) {
  LiveServer live(qos_opts(), "authhelper");
  std::string err;
  EXPECT_FALSE(live.client.authenticate("alice", "nope", &err));
  EXPECT_NE(err.find("unknown tenant or bad key"), std::string::npos) << err;
  EXPECT_TRUE(live.client.authenticate("alice", "s3cret", &err)) << err;
}

TEST(ServiceQos, AuthOnAServerWithoutTenantsFails) {
  LiveServer live({}, "noauth");
  std::string reply;
  ASSERT_TRUE(live.client.roundtrip(
      "{\"op\": \"auth\", \"id\": \"a\", \"tenant\": \"alice\", \"key\": \"s3cret\"}",
      &reply));
  EXPECT_EQ(field(reply, "code"), "auth_failed") << reply;
  EXPECT_NE(field(reply, "message").find("no tenants"), std::string::npos);
  // The un-tenanted server still solves without auth, exactly as before.
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
}

TEST(ServiceQos, RateLimitedVerdictIsPerTenant) {
  // bob: rate 1/s, burst 1 -- the second back-to-back solve must be
  // rate_limited (not overloaded), while alice stays unlimited.
  LiveServer live(qos_opts(), "rate");
  std::string err, reply;
  ASSERT_TRUE(live.client.authenticate("bob", "hunter2", &err)) << err;
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "code"), "rate_limited") << reply;

  Client alice;
  ASSERT_TRUE(alice.connect_unix(live.sock, &err)) << err;
  ASSERT_TRUE(alice.authenticate("alice", "s3cret", &err)) << err;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(alice.roundtrip(kSmallSolve, &reply));
    EXPECT_EQ(field(reply, "event"), "result") << reply;
  }
  EXPECT_GE(live.server.counters().rejected_rate_limited, 1u);
}

TEST(ServiceQos, QuotaExceededVerdictIsDistinct) {
  // bob's max_inflight is 1: with an endless solve occupying it, the next
  // request bounces with quota_exceeded BEFORE touching the token bucket.
  ServerOptions opts = qos_opts();
  opts.tenants[1].rate = 0.0;  // isolate the quota from the rate limit
  opts.tenants[1].burst = 0.0;
  LiveServer live(opts, "quota");
  std::string err, reply;
  ASSERT_TRUE(live.client.authenticate("bob", "hunter2", &err)) << err;
  ASSERT_TRUE(live.client.send_line(endless_solve("held")));
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "code"), "quota_exceeded") << reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"cancel\", \"id\": \"held\"}", &reply));
  EXPECT_EQ(field(reply, "event"), "cancel_ack");
  std::string cancelled;
  ASSERT_TRUE(live.client.recv_line(&cancelled));
  EXPECT_EQ(field(cancelled, "code"), "cancelled") << cancelled;
  // Quota released: bob solves again.
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  EXPECT_EQ(field(reply, "event"), "result") << reply;
  EXPECT_GE(live.server.counters().rejected_quota, 1u);
}

TEST(ServiceQos, StatsCarryTheTenantSection) {
  LiveServer live(qos_opts(), "qstats");
  std::string err, reply;
  ASSERT_TRUE(live.client.authenticate("alice", "s3cret", &err)) << err;
  ASSERT_TRUE(live.client.roundtrip(kSmallSolve, &reply));
  ASSERT_EQ(field(reply, "event"), "result") << reply;
  ASSERT_TRUE(live.client.roundtrip("{\"op\": \"stats\", \"id\": \"s\"}", &reply));
  JsonValue v;
  ASSERT_TRUE(json_parse(reply, &v, &err)) << err;
  const JsonValue* tenants = v.find("tenants");
  ASSERT_NE(tenants, nullptr) << reply;
  const JsonValue* alice = tenants->find("alice");
  ASSERT_NE(alice, nullptr) << reply;
  EXPECT_EQ(alice->find("completed")->number, 1.0);
  EXPECT_EQ(alice->find("inflight")->number, 0.0);
  EXPECT_GT(alice->find("latency_ms")->find("p50")->number, 0.0);
  ASSERT_NE(tenants->find("bob"), nullptr) << "idle tenants still reported";
  // Tenant keys render in sorted order regardless of declaration order.
  EXPECT_LT(reply.find("\"alice\""), reply.find("\"bob\""));
}

TEST(ServiceQos, InvalidTenantSetIsRejectedAtStartup) {
  ServerOptions opts = qos_opts();
  opts.unix_path = "/tmp/feir_service_test_dup_" + std::to_string(::getpid()) + ".sock";
  opts.tenants.push_back(opts.tenants[0]);  // duplicate id
  Server server(opts);
  std::string err;
  EXPECT_FALSE(server.start(&err));
  EXPECT_NE(err.find("duplicate tenant id"), std::string::npos) << err;
}

}  // namespace
}  // namespace feir::service
