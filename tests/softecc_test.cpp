// Tests of the software-ECC (erasure-code) tier for constant data (§2.1):
// exact single-erasure repair, multi-group repair, strength limits, scrub.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/softecc.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

std::vector<double> random_data(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-100, 100);
  return v;
}

void destroy_page(std::vector<double>& v, index_t page) {
  const index_t p0 = page * static_cast<index_t>(kDoublesPerPage);
  const index_t p1 = std::min<index_t>(p0 + static_cast<index_t>(kDoublesPerPage),
                                       static_cast<index_t>(v.size()));
  for (index_t i = p0; i < p1; ++i) v[static_cast<std::size_t>(i)] = -12345.0;
}

class EccSuite : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(EccSuite, RepairsAnySingleLostPageExactly) {
  const auto [n, group] = GetParam();
  const std::vector<double> original = random_data(n, n + group);
  EccShield shield(original.data(), n, group);

  for (index_t page = 0; page < shield.pages(); ++page) {
    std::vector<double> v = original;
    destroy_page(v, page);
    ASSERT_TRUE(shield.repair(v.data(), page));
    for (std::size_t i = 0; i < v.size(); ++i)
      ASSERT_EQ(v[i], original[i]) << "page " << page << " idx " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndGroups, EccSuite,
    ::testing::Combine(
        // whole pages, short tail, sub-page buffer
        ::testing::Values<index_t>(4 * 512, 4 * 512 + 100, 300, 16 * 512 + 7),
        ::testing::Values<index_t>(1, 2, 4, 8)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_g" +
             std::to_string(std::get<1>(info.param));
    });

TEST(EccShield, RepairsLossesInDifferentGroups) {
  const index_t n = 16 * 512;
  const std::vector<double> original = random_data(n, 7);
  EccShield shield(original.data(), n, 4);  // groups of 4 pages

  std::vector<double> v = original;
  destroy_page(v, 1);
  destroy_page(v, 6);
  destroy_page(v, 13);
  ASSERT_TRUE(shield.correctable({1, 6, 13}));
  ASSERT_TRUE(shield.repair_many(v.data(), {1, 6, 13}));
  for (std::size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i], original[i]);
}

TEST(EccShield, RefusesTwoLossesInOneGroup) {
  const index_t n = 8 * 512;
  const std::vector<double> original = random_data(n, 9);
  EccShield shield(original.data(), n, 4);
  EXPECT_FALSE(shield.correctable({0, 2}));  // same group of 4
  std::vector<double> v = original;
  EXPECT_FALSE(shield.repair_many(v.data(), {0, 2}));
  EXPECT_TRUE(shield.correctable({0, 5}));
}

TEST(EccShield, RejectsOutOfRangePages) {
  const std::vector<double> original = random_data(1024, 3);
  EccShield shield(original.data(), 1024, 2);
  std::vector<double> v = original;
  EXPECT_FALSE(shield.repair(v.data(), 99));
  EXPECT_FALSE(shield.correctable({99}));
}

TEST(EccShield, SpaceOverheadIsOneOverK) {
  const index_t n = 32 * 512;
  const std::vector<double> data = random_data(n, 4);
  EccShield s8(data.data(), n, 8);
  EccShield s2(data.data(), n, 2);
  EXPECT_EQ(s8.parity_pages(), 4);
  EXPECT_EQ(s2.parity_pages(), 16);
}

TEST(EccShield, ScrubFlagsSilentCorruption) {
  const index_t n = 8 * 512;
  std::vector<double> v = random_data(n, 5);
  EccShield shield(v.data(), n, 4);
  EXPECT_TRUE(shield.scrub(v.data()).empty());
  v[3 * 512 + 17] += 1.0;  // silent flip in group 0
  const auto bad = shield.scrub(v.data());
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 0);
}

TEST(EccShield, PreservesNegativeZeroAndDenormals) {
  // Bitwise XOR must round-trip exotic values exactly.
  std::vector<double> v(2 * 512, 0.0);
  v[0] = -0.0;
  v[1] = 5e-324;      // smallest denormal
  v[2] = -5e-324;
  v[512] = 1.0;
  const std::vector<double> original = v;
  EccShield shield(v.data(), static_cast<index_t>(v.size()), 2);
  destroy_page(v, 0);
  ASSERT_TRUE(shield.repair(v.data(), 0));
  EXPECT_TRUE(std::equal(v.begin(), v.end(), original.begin(), [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  }));
}

}  // namespace
}  // namespace feir
