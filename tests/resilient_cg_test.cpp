// Integration-level tests of the task-based resilient CG: exactness of
// FEIR/AFEIR recovery (same convergence as the ideal run), behaviour of the
// Trivial / Checkpoint / Lossy baselines under injected page losses, the
// preconditioned variant, multiple simultaneous errors, and the real
// mprotect injection backend.
#include <gtest/gtest.h>

#include <tuple>

#include "core/resilient_cg.hpp"
#include "fault/injector.hpp"
#include "fault/sighandler.hpp"
#include "precond/blockjacobi.hpp"
#include "precond/fixedpoint.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

struct Harness {
  TestbedProblem p;
  ResilientCgOptions opts;
  std::unique_ptr<BlockJacobi> M;

  explicit Harness(const std::string& name, Method m, index_t block_rows = 64,
                   bool pcg = false, double scale = 0.12) {
    p = make_testbed(name, scale);
    opts.method = m;
    opts.block_rows = block_rows;
    opts.threads = 4;
    opts.tol = 1e-10;
    opts.max_iter = 30000;
    if (pcg) M = std::make_unique<BlockJacobi>(p.A, BlockLayout(p.A.n, block_rows));
  }

  /// Runs a solve injecting into `region` at the given iterations (block
  /// chosen deterministically from the seed).
  ResilientCgResult run(const std::vector<std::pair<index_t, std::string>>& injections,
                        std::uint64_t seed = 1) {
    ResilientCg* cg_ptr = nullptr;
    ErrorInjector* inj_ptr = nullptr;
    Rng rng(seed);
    std::size_t next = 0;
    auto plan = injections;
    ResilientCgOptions o = opts;
    o.on_iteration = [&](const IterRecord& rec) {
      while (next < plan.size() && rec.iter == plan[next].first) {
        ProtectedRegion* r = cg_ptr->domain().find(plan[next].second);
        ASSERT_NE(r, nullptr) << plan[next].second;
        const index_t blk = static_cast<index_t>(
            rng.uniform_int(static_cast<std::uint64_t>(r->layout.num_blocks())));
        inj_ptr->inject_now(*r, blk);
        ++next;
      }
    };
    ResilientCg cg(p.A, p.b.data(), o, M.get());
    ErrorInjector inj(cg.domain(), {1.0, seed, InjectMode::Soft});
    cg_ptr = &cg;
    inj_ptr = &inj;
    x.assign(static_cast<std::size_t>(p.A.n), 0.0);
    return cg.solve(x.data());
  }

  double solution_error() const {
    double e = 0.0, n2 = 0.0;
    for (index_t i = 0; i < p.A.n; ++i) {
      const double d = x[static_cast<std::size_t>(i)] - p.x_true[static_cast<std::size_t>(i)];
      e += d * d;
      n2 += p.x_true[static_cast<std::size_t>(i)] * p.x_true[static_cast<std::size_t>(i)];
    }
    return std::sqrt(e / n2);
  }

  std::vector<double> x;
};

TEST(ResilientCg, IdealMatchesReferenceCg) {
  Harness h("ecology2", Method::Ideal);
  const auto r = h.run({});
  ASSERT_TRUE(r.converged);

  std::vector<double> xr(static_cast<std::size_t>(h.p.A.n), 0.0);
  SolveOptions so;
  so.tol = 1e-10;
  const SolveResult ref = cg_solve(h.p.A, h.p.b.data(), xr.data(), so);
  ASSERT_TRUE(ref.converged);
  // Same algorithm, same arithmetic order up to task partials: iteration
  // counts must agree within a whisker.
  EXPECT_NEAR(static_cast<double>(r.iterations), static_cast<double>(ref.iterations),
              0.05 * static_cast<double>(ref.iterations) + 3.0);
  EXPECT_LT(h.solution_error(), 1e-6);
}

// --- Exactness of forward recovery (the paper's headline claim) ----------

using ExactParam = std::tuple<std::string, Method, std::string>;  // vector, method, matrix

class ExactRecovery : public ::testing::TestWithParam<ExactParam> {};

TEST_P(ExactRecovery, SingleErrorDoesNotChangeConvergence) {
  const auto& [vec, method, matrix] = GetParam();
  Harness ideal(matrix, Method::Ideal);
  const auto ri = ideal.run({});
  ASSERT_TRUE(ri.converged);

  Harness h(matrix, method);
  const index_t mid = ri.iterations / 2;
  const auto r = h.run({{mid, vec}});
  ASSERT_TRUE(r.converged) << vec;
  EXPECT_LT(h.solution_error(), 1e-6) << vec;
  // Exact interpolation: convergence rate is preserved (small slack for the
  // AFEIR contribution window and partial-sum reassociation).
  EXPECT_LE(r.iterations,
            ri.iterations + std::max<index_t>(ri.iterations / 10, 6))
      << vec << " took " << r.iterations << " vs ideal " << ri.iterations;
}

INSTANTIATE_TEST_SUITE_P(
    VectorsMethods, ExactRecovery,
    ::testing::Combine(::testing::Values("x", "g", "d0", "d1", "q"),
                       ::testing::Values(Method::Feir, Method::Afeir),
                       ::testing::Values("ecology2", "thermal2")),
    [](const auto& info) {
      return std::get<0>(info.param) + std::string("_") +
             method_name(std::get<1>(info.param)) + "_" + std::get<2>(info.param);
    });

TEST(ResilientCg, FeirHandlesRepeatedErrors) {
  Harness ideal("ecology2", Method::Ideal);
  const auto ri = ideal.run({});
  Harness h("ecology2", Method::Feir);
  std::vector<std::pair<index_t, std::string>> plan;
  const char* vecs[] = {"x", "g", "q", "d0", "d1"};
  for (index_t k = 2; k + 4 < ri.iterations && plan.size() < 10; k += ri.iterations / 10)
    plan.emplace_back(k, vecs[plan.size() % 5]);
  const auto r = h.run(plan, 99);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_LE(r.iterations, ri.iterations + ri.iterations / 5 + 10);
  const auto& s = r.stats;
  const std::uint64_t recoveries = s.lincomb_recoveries + s.diag_solves +
                                   s.spmv_recomputes + s.residual_recomputes +
                                   s.x_recoveries + s.redo_updates;
  EXPECT_GT(recoveries, 0u);
}

TEST(ResilientCg, SimultaneousErrorsInOneVectorAreCoupledSolved) {
  Harness ideal("thermal2", Method::Ideal);
  const auto ri = ideal.run({});
  Harness h("thermal2", Method::Feir);
  const index_t mid = ri.iterations / 2;
  // Two x pages in the same iteration: §2.4 case 1.
  const auto r = h.run({{mid, "x"}, {mid, "x"}});
  ASSERT_TRUE(r.converged);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_LE(r.iterations, ri.iterations + ri.iterations / 10 + 6);
}

// --- Preconditioned variant ------------------------------------------------

using PcgParam = std::tuple<std::string, Method>;

class PcgRecovery : public ::testing::TestWithParam<PcgParam> {};

TEST_P(PcgRecovery, PcgWithErrorsStillConverges) {
  const auto& [vec, method] = GetParam();
  Harness ideal("Dubcova3", Method::Ideal, 64, /*pcg=*/true);
  const auto ri = ideal.run({});
  ASSERT_TRUE(ri.converged);

  Harness h("Dubcova3", method, 64, /*pcg=*/true);
  const auto r = h.run({{ri.iterations / 3, vec}, {2 * ri.iterations / 3, vec}});
  ASSERT_TRUE(r.converged) << vec;
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_LE(r.iterations, ri.iterations + ri.iterations / 5 + 8) << vec;
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, PcgRecovery,
    ::testing::Combine(::testing::Values("x", "g", "z", "q", "d0"),
                       ::testing::Values(Method::Feir, Method::Afeir)),
    [](const auto& info) {
      return std::get<0>(info.param) + std::string("_") + method_name(std::get<1>(info.param));
    });

// --- Baselines ---------------------------------------------------------------

TEST(ResilientCg, CheckpointRollsBackAndConverges) {
  Harness ideal("ecology2", Method::Ideal);
  const auto ri = ideal.run({});
  Harness h("ecology2", Method::Checkpoint);
  h.opts.ckpt.period_iters = std::max<index_t>(ri.iterations / 5, 2);
  const auto r = h.run({{ri.iterations / 2, "x"}});
  ASSERT_TRUE(r.converged);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_GE(r.stats.rollbacks, 1u);
  EXPECT_GE(r.stats.checkpoints, 2u);
  // Rollback re-executes iterations: strictly more work than ideal.
  EXPECT_GT(r.iterations, ri.iterations);
}

TEST(ResilientCg, LossyRestartsAndConverges) {
  Harness ideal("ecology2", Method::Ideal);
  const auto ri = ideal.run({});
  Harness h("ecology2", Method::Lossy);
  const auto r = h.run({{ri.iterations / 2, "x"}});
  ASSERT_TRUE(r.converged);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_GE(r.stats.restarts, 1u);
  EXPECT_GE(r.stats.x_recoveries, 1u);  // the block-Jacobi interpolation ran
  // Restart harms superlinear convergence: more iterations than ideal.
  EXPECT_GT(r.iterations, ri.iterations);
}

TEST(ResilientCg, TrivialDegradesButTerminates) {
  Harness ideal("qa8fm", Method::Ideal, 64, false, 0.2);
  const auto ri = ideal.run({});
  Harness h("qa8fm", Method::Trivial, 64, false, 0.2);
  const auto r = h.run({{ri.iterations / 2, "x"}});
  ASSERT_TRUE(r.converged);  // the safety-net restart guarantees termination
  EXPECT_LT(h.solution_error(), 1e-5);
  EXPECT_GE(r.stats.zeroed_blocks, 1u);
  EXPECT_GE(r.iterations, ri.iterations);
}

TEST(ResilientCg, MethodOrderingUnderSameInjection) {
  // The paper's qualitative result: FEIR work <= Lossy work <= trivial-ish.
  Harness ideal("ecology2", Method::Ideal);
  const auto ri = ideal.run({});
  const index_t mid = ri.iterations / 2;

  Harness hf("ecology2", Method::Feir);
  const auto rf = hf.run({{mid, "x"}}, 5);
  Harness hl("ecology2", Method::Lossy);
  const auto rl = hl.run({{mid, "x"}}, 5);
  ASSERT_TRUE(rf.converged);
  ASSERT_TRUE(rl.converged);
  EXPECT_LE(rf.iterations, rl.iterations);
}

// --- Background exponential injection ---------------------------------------

TEST(ResilientCg, SurvivesBackgroundInjectorFeir) {
  TestbedProblem p = make_testbed("ecology2", 0.15);
  ResilientCgOptions opts;
  opts.method = Method::Feir;
  opts.block_rows = 64;
  opts.threads = 4;
  opts.tol = 1e-9;
  opts.max_iter = 50000;
  ResilientCg cg(p.A, p.b.data(), opts);
  ErrorInjector inj(cg.domain(), {0.02, 42, InjectMode::Soft});  // MTBE 20 ms
  inj.start();
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = cg.solve(x.data());
  inj.stop();
  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
}

// --- Real mprotect-backed page loss -----------------------------------------

TEST(ResilientCg, FeirSurvivesRealPageDrop) {
  install_due_handler();
  // Page-granularity blocks require a problem spanning several pages.
  TestbedProblem p = make_testbed("ecology2", 0.35);  // n ~ 2900+ rows
  ASSERT_GE(p.A.n, 4 * static_cast<index_t>(kDoublesPerPage));

  ResilientCgOptions opts;
  opts.method = Method::Feir;
  opts.block_rows = static_cast<index_t>(kDoublesPerPage);
  opts.threads = 4;
  opts.tol = 1e-9;
  opts.max_iter = 60000;

  ResilientCg* cg_ptr = nullptr;
  ErrorInjector* inj_ptr = nullptr;
  Rng rng(17);
  std::vector<index_t> when{20, 60};
  std::size_t next = 0;
  opts.on_iteration = [&](const IterRecord& rec) {
    while (next < when.size() && rec.iter == when[next]) {
      auto [region, block] = cg_ptr->domain().pick_uniform(rng);
      if (region != nullptr) inj_ptr->inject_now(*region, block);
      ++next;
    }
  };

  ResilientCg cg(p.A, p.b.data(), opts);
  activate_due_domain(&cg.domain());
  ErrorInjector inj(cg.domain(), {1.0, 3, InjectMode::Mprotect});
  cg_ptr = &cg;
  inj_ptr = &inj;

  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = cg.solve(x.data());
  activate_due_domain(nullptr);

  EXPECT_TRUE(r.converged);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
}

// --- Bookkeeping ---------------------------------------------------------------

TEST(ResilientCg, HistoryAndStateTimesPopulated) {
  Harness h("qa8fm", Method::Feir, 64, false, 0.2);
  h.opts.record_history = true;
  const auto r = h.run({});
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(static_cast<index_t>(r.history.size()), r.iterations);
  EXPECT_GT(r.tasks, 0u);
  EXPECT_GT(r.states.useful, 0.0);
}

TEST(ResilientCg, FixedPointPreconditionerWithErrors) {
  // §3.2 end-to-end with a non-block-diagonal M: only the partial
  // application property is needed; z recovery sweeps the k-hop closure.
  TestbedProblem p = make_testbed("thermal2", 0.12);
  BlockLayout layout(p.A.n, 64);
  JacobiSweeps M(p.A, layout, 3);

  ResilientCgOptions opts;
  opts.method = Method::Feir;
  opts.block_rows = 64;
  opts.threads = 4;
  opts.tol = 1e-9;
  opts.max_iter = 30000;

  ResilientCg* cg_ptr = nullptr;
  int injected = 0;
  opts.on_iteration = [&](const IterRecord& rec) {
    if (injected < 2 && rec.iter > 0 && rec.iter % 40 == 0) {
      ProtectedRegion* r = cg_ptr->domain().find(injected == 0 ? "z" : "g");
      r->lose_block(r->layout.num_blocks() / 2);
      ++injected;
    }
  };
  ResilientCg cg(p.A, p.b.data(), opts, &M);
  cg_ptr = &cg;
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = cg.solve(x.data());
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.stats.precond_reapplies + r.stats.residual_recomputes, 1u);
  EXPECT_LE(residual_norm(p.A, x.data(), p.b.data()) / norm2(p.b.data(), p.A.n), 1e-9);
}

TEST(ResilientCg, MaxSecondsBudgetIsHonoured) {
  TestbedProblem p = make_testbed("af_shell8", 0.25);  // slow converger
  ResilientCgOptions opts;
  opts.method = Method::Ideal;
  opts.block_rows = 64;
  opts.threads = 2;
  opts.tol = 0.0;         // unreachable on any hardware
  opts.max_seconds = 0.05;
  ResilientCg cg(p.A, p.b.data(), opts);
  std::vector<double> x(static_cast<std::size_t>(p.A.n), 0.0);
  const auto r = cg.solve(x.data());
  EXPECT_FALSE(r.converged);
  EXPECT_LT(r.seconds, 2.0);  // stopped promptly (generous slack for CI noise)
}

TEST(ResilientCg, LazyRecoveryTasksStillRecoverExactly) {
  // The paper's future-work mode: r tasks instantiated only when an error
  // was signalled.  Same exactness, near-zero fault-free machinery.
  Harness ideal("ecology2", Method::Ideal);
  const auto ri = ideal.run({});
  Harness h("ecology2", Method::Afeir);
  h.opts.lazy_recovery_tasks = true;
  const auto r = h.run({{ri.iterations / 2, "x"}, {2 * ri.iterations / 3, "q"}});
  ASSERT_TRUE(r.converged);
  EXPECT_LT(h.solution_error(), 1e-6);
  EXPECT_LE(r.iterations, ri.iterations + ri.iterations / 10 + 8);
  // Far fewer tasks than the always-on variant would submit.
  Harness h2("ecology2", Method::Afeir);
  const auto r2 = h2.run({{ri.iterations / 2, "x"}});
  EXPECT_LT(r.tasks, r2.tasks);
}

TEST(ResilientCg, WarmStartConvergesImmediately) {
  Harness h("qa8fm", Method::Feir, 64, false, 0.2);
  ResilientCg cg(h.p.A, h.p.b.data(), h.opts);
  std::vector<double> x = h.p.x_true;
  const auto r = cg.solve(x.data());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

}  // namespace
}  // namespace feir
