// Tests of the two-level (multigrid-style) preconditioner: partial
// application exactness (§3.2's multigrid recipe), SPD-ness via CG, and the
// coarse-correction structure.
#include <gtest/gtest.h>

#include "precond/twolevel.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

TEST(TwoLevel, PartialApplicationIsExactOnRequestedBlocks) {
  CsrMatrix A = laplace2d_5pt(16, 16);
  BlockLayout layout(A.n, 32);
  TwoLevel M(A, layout);

  Rng rng(3);
  std::vector<double> g(static_cast<std::size_t>(A.n));
  for (auto& v : g) v = rng.uniform(-1, 1);

  std::vector<double> z_full(g.size(), 0.0), z_part(g.size(), -9.0);
  M.apply(g.data(), z_full.data());
  M.apply_blocks({1, 6}, g.data(), z_part.data());
  for (index_t i = 0; i < A.n; ++i) {
    const index_t b = layout.block_of(i);
    if (b == 1 || b == 6)
      EXPECT_EQ(z_part[static_cast<std::size_t>(i)], z_full[static_cast<std::size_t>(i)]);
    else
      EXPECT_EQ(z_part[static_cast<std::size_t>(i)], -9.0);
  }
}

TEST(TwoLevel, CoarseDimensionEqualsBlockCount) {
  CsrMatrix A = laplace2d_5pt(12, 12);
  BlockLayout layout(A.n, 16);
  TwoLevel M(A, layout);
  EXPECT_EQ(M.coarse_n(), layout.num_blocks());
}

TEST(TwoLevel, CapturesConstantErrorComponent) {
  // The coarse space contains piecewise constants: for g = A * 1 the
  // preconditioned output must be much closer to 1 than the smoother alone.
  CsrMatrix A = parabolic2d(20, 20, 10.0);
  BlockLayout layout(A.n, 50);
  TwoLevel M(A, layout);

  std::vector<double> ones(static_cast<std::size_t>(A.n), 1.0), g(ones.size()),
      z(ones.size());
  spmv(A, ones.data(), g.data());
  M.apply(g.data(), z.data());
  double err = 0.0;
  for (double v : z) err += (v - 1.0) * (v - 1.0);
  // Jacobi alone would leave err ~ n * O(1); the coarse solve must shrink it.
  EXPECT_LT(std::sqrt(err / static_cast<double>(A.n)), 0.5);
}

class TwoLevelCg : public ::testing::TestWithParam<std::string> {};

TEST_P(TwoLevelCg, AcceleratesCg) {
  TestbedProblem p = make_testbed(GetParam(), 0.15);
  BlockLayout layout(p.A.n, 64);
  TwoLevel M(p.A, layout);

  SolveOptions opts;
  opts.tol = 1e-9;
  std::vector<double> x1(static_cast<std::size_t>(p.A.n), 0.0), x2 = x1;
  const SolveResult plain = cg_solve(p.A, p.b.data(), x1.data(), opts);
  const SolveResult pre = cg_solve(p.A, p.b.data(), x2.data(), opts, &M);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged) << GetParam();
  EXPECT_LT(pre.iterations, plain.iterations) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Matrices, TwoLevelCg,
                         ::testing::Values("ecology2", "parabolic_fem", "thermal2"),
                         [](const auto& info) { return info.param; });

TEST(TwoLevel, RejectsNonSpd) {
  CsrMatrix B = CsrMatrix::from_triplets(2, {{0, 0, -1.0}, {1, 1, 1.0}});
  EXPECT_THROW(TwoLevel(B, BlockLayout(2, 1)), std::runtime_error);
}

}  // namespace
}  // namespace feir
