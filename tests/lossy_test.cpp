// Numerical verification of the paper's Theorems 1-3 on the Lossy (block-
// Jacobi) interpolation, plus unit tests of the interpolation itself.
//
//   Theorem 1: ||e_I|| <= c_i ||e|| (contraction, general A).
//   Theorem 2: ||e_I||_A <= ||e||_A for SPD A (Agullo et al.).
//   Theorem 3: the interpolation MINIMIZES ||e_I||_A over all possible
//              values of the lost block (this paper's new result).
#include <gtest/gtest.h>

#include "core/lossy.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

struct LossyCase {
  TestbedProblem p;
  BlockLayout layout;
  std::vector<double> x;  // a mid-convergence iterate
};

LossyCase make_case(const std::string& name, index_t block_rows, index_t cg_iters) {
  LossyCase c{make_testbed(name, 0.12), {}, {}};
  c.layout = BlockLayout(c.p.A.n, block_rows);
  c.x.assign(static_cast<std::size_t>(c.p.A.n), 0.0);
  SolveOptions opts;
  opts.max_iter = cg_iters;  // stop early: realistic partially-converged x
  cg_solve(c.p.A, c.p.b.data(), c.x.data(), opts);
  return c;
}

class LossySuite : public ::testing::TestWithParam<std::string> {};

TEST_P(LossySuite, Theorem2ANormNeverIncreases) {
  LossyCase c = make_case(GetParam(), 64, 10);
  DiagBlockSolver solver(c.p.A, c.layout);
  const double before = a_norm_error(c.p.A, c.x.data(), c.p.x_true.data());
  for (index_t blk = 0; blk < std::min<index_t>(c.layout.num_blocks(), 6); ++blk) {
    std::vector<double> xI = c.x;
    ASSERT_TRUE(lossy_interpolate(solver, {blk}, c.p.b.data(), xI.data()));
    const double after = a_norm_error(c.p.A, xI.data(), c.p.x_true.data());
    EXPECT_LE(after, before * (1.0 + 1e-10)) << "block " << blk;
  }
}

TEST_P(LossySuite, Theorem3InterpolationIsANormOptimal) {
  LossyCase c = make_case(GetParam(), 64, 10);
  DiagBlockSolver solver(c.p.A, c.layout);
  Rng rng(99);
  const index_t blk = c.layout.num_blocks() / 2;

  std::vector<double> xI = c.x;
  ASSERT_TRUE(lossy_interpolate(solver, {blk}, c.p.b.data(), xI.data()));
  const double optimal = a_norm_error(c.p.A, xI.data(), c.p.x_true.data());

  // Any perturbation of the interpolated block must be no better.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> alt = xI;
    for (index_t i = c.layout.begin(blk); i < c.layout.end(blk); ++i)
      alt[static_cast<std::size_t>(i)] += rng.uniform(-0.5, 0.5);
    const double worse = a_norm_error(c.p.A, alt.data(), c.p.x_true.data());
    EXPECT_GE(worse, optimal * (1.0 - 1e-10));
  }
  // The true lost values themselves are also no better (they carry error in
  // the A-norm sense that interpolation projects away).
  EXPECT_GE(a_norm_error(c.p.A, c.x.data(), c.p.x_true.data()), optimal * (1.0 - 1e-10));
}

TEST_P(LossySuite, FixedPointPropertyAtTheSolution) {
  // If x = x*, interpolation must return x* (e = 0 stays 0).
  LossyCase c = make_case(GetParam(), 64, 0);
  DiagBlockSolver solver(c.p.A, c.layout);
  std::vector<double> x = c.p.x_true;
  ASSERT_TRUE(lossy_interpolate(solver, {1}, c.p.b.data(), x.data()));
  for (index_t i = 0; i < c.p.A.n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], c.p.x_true[static_cast<std::size_t>(i)], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Matrices, LossySuite,
                         ::testing::Values("ecology2", "thermal2", "Dubcova3", "qa8fm"),
                         [](const auto& info) { return info.param; });

TEST(Lossy, ResidualVanishesOnInterpolatedBlock) {
  // By construction g_I = 0 on the interpolated block (proof of Theorem 3).
  LossyCase c = make_case("consph", 16, 5);
  DiagBlockSolver solver(c.p.A, c.layout);
  const index_t blk = c.layout.num_blocks() / 2;
  std::vector<double> xI = c.x;
  ASSERT_TRUE(lossy_interpolate(solver, {blk}, c.p.b.data(), xI.data()));
  std::vector<double> Ax(static_cast<std::size_t>(c.p.A.n));
  spmv(c.p.A, xI.data(), Ax.data());
  for (index_t i = c.layout.begin(blk); i < c.layout.end(blk); ++i)
    EXPECT_NEAR(c.p.b[static_cast<std::size_t>(i)] - Ax[static_cast<std::size_t>(i)], 0.0,
                1e-7);
}

TEST(Lossy, MultiBlockInterpolationAlsoContracts) {
  LossyCase c = make_case("thermal2", 64, 8);
  DiagBlockSolver solver(c.p.A, c.layout);
  const double before = a_norm_error(c.p.A, c.x.data(), c.p.x_true.data());
  std::vector<double> xI = c.x;
  ASSERT_TRUE(lossy_interpolate(solver, {0, 2, 5}, c.p.b.data(), xI.data()));
  EXPECT_LE(a_norm_error(c.p.A, xI.data(), c.p.x_true.data()), before * (1.0 + 1e-10));
}

TEST(Lossy, EmptyBlockListIsNoOp) {
  LossyCase c = make_case("qa8fm", 64, 3);
  DiagBlockSolver solver(c.p.A, c.layout);
  std::vector<double> x = c.x;
  EXPECT_TRUE(lossy_interpolate(solver, {}, c.p.b.data(), x.data()));
  for (index_t i = 0; i < c.p.A.n; ++i)
    EXPECT_EQ(x[static_cast<std::size_t>(i)], c.x[static_cast<std::size_t>(i)]);
}

TEST(ANorm, MatchesDirectComputation) {
  CsrMatrix A = laplace2d_5pt(4, 4);
  std::vector<double> v(16, 0.0);
  v[0] = 1.0;
  EXPECT_NEAR(a_norm(A, v.data()), std::sqrt(A.at(0, 0)), 1e-12);
}

}  // namespace
}  // namespace feir
