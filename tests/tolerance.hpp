// Error-measurement helpers for the mixed-precision property tier
// (tests/precision_test.cpp): ULP distances, the standard fp32 rounding
// factors gamma_k, a componentwise forward-error check of the fp32 SpMV
// kernels against an fp64 reference, and a condition-number estimate that
// scales the mixed-precision CG solution bound.
//
// Conventions:
//   - u32 = 2^-24 (fp32 unit roundoff), gamma_k = k*u/(1 - k*u);
//   - the fp32 kernel reference is the fp64 dot product of the WIDENED fp32
//     operands, not of the original fp64 data: the kernels' contract is
//     "an accurately-summed product of their stored fp32 values", and the
//     one-time quantization loss of building those values (which can dwarf
//     rounding for subnormal-adjacent inputs) is a property of the storage
//     decision, not of the kernels under test.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/f32.hpp"

namespace feir::testtol {

/// fp32 unit roundoff.
inline constexpr double kU32 = 1.0 / 16777216.0;  // 2^-24

/// Standard rounding-error factor gamma_k = k*u / (1 - k*u) for fp32: the
/// componentwise bound on a k-term accumulated product-sum (Higham, ASNA
/// Lemma 3.1).  Requires k*u < 1, comfortably true for any test row.
inline double gamma32(std::int64_t k) {
  const double ku = static_cast<double>(k) * kU32;
  return ku / (1.0 - ku);
}

/// ULP distance between two floats: how many representable values apart they
/// are, walking through zero for opposite signs (so -0.0f vs 0.0f is 0).
/// NaN anywhere maps to the maximum distance.
inline std::uint32_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return 0xFFFFFFFFu;
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude bit patterns onto a monotone integer line.
  const auto mono = [](std::int32_t i) -> std::int64_t {
    return i >= 0 ? std::int64_t{i} : -(std::int64_t{i} & 0x7FFFFFFFLL);
  };
  const std::int64_t d = mono(ia) - mono(ib);
  const std::int64_t ad = d < 0 ? -d : d;
  return ad > 0xFFFFFFFFLL ? 0xFFFFFFFFu : static_cast<std::uint32_t>(ad);
}

/// ULP distance between two doubles, same conventions.
inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return ~std::uint64_t{0};
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  const auto mono = [](std::int64_t i) -> std::int64_t {
    return i >= 0 ? i : -(i & 0x7FFFFFFFFFFFFFFFLL);
  };
  const std::int64_t lo = mono(ia) < mono(ib) ? mono(ia) : mono(ib);
  const std::int64_t hi = mono(ia) < mono(ib) ? mono(ib) : mono(ia);
  return static_cast<std::uint64_t>(hi - lo);
}

/// Result of a componentwise forward-error audit of one fp32 SpMV output.
struct ForwardErrorReport {
  bool ok = true;
  index_t worst_row = -1;
  double worst_excess = 0.0;  ///< max |err| - bound over failing rows
  std::string detail;
};

/// Checks y (one fp32 SpMV result, n entries) componentwise against the fp64
/// reference of the widened operands:
///
///   |y_i - sum_j (double)a_ij * (double)x_j|
///       <= gamma32(n_i + 1) * sum_j |a_ij| |x_j|  (+ tiny absolute slack)
///
/// n_i is the row's stored-nonzero count; the +1 absorbs one extra rounding
/// for blended/padded accumulation orders (SELL lanes).  The absolute slack
/// covers rows whose exact result underflows fp32's subnormal range, where
/// relative analysis does not apply.
inline ForwardErrorReport check_spmv32_forward_error(const CsrMatrixF32& A,
                                                     const float* x, const float* y) {
  ForwardErrorReport rep;
  constexpr double kAbsSlack = 1e-40;  // below fp32 subnormal granularity
  for (index_t i = 0; i < A.n; ++i) {
    double ref = 0.0, mag = 0.0;
    const auto k0 = static_cast<std::size_t>(A.row_ptr[static_cast<std::size_t>(i)]);
    const auto k1 = static_cast<std::size_t>(A.row_ptr[static_cast<std::size_t>(i) + 1]);
    for (std::size_t k = k0; k < k1; ++k) {
      const double a = static_cast<double>(A.vals[k]);
      const double xv = static_cast<double>(x[A.col_idx[k]]);
      ref += a * xv;
      mag += std::fabs(a) * std::fabs(xv);
    }
    const double err = std::fabs(static_cast<double>(y[static_cast<std::size_t>(i)]) - ref);
    const double bound =
        gamma32(static_cast<std::int64_t>(k1 - k0) + 1) * mag + kAbsSlack;
    if (err > bound) {
      if (rep.ok || err - bound > rep.worst_excess) {
        rep.worst_row = i;
        rep.worst_excess = err - bound;
        rep.detail = "row " + std::to_string(i) + ": |err| " + std::to_string(err) +
                     " > bound " + std::to_string(bound) + " (nnz " +
                     std::to_string(k1 - k0) + ")";
      }
      rep.ok = false;
    }
  }
  return rep;
}

/// Cheap condition-number estimate for the diagonally-dominant SPD families
/// the precision tier solves: the diagonal spread max|a_ii| / min|a_ii|.
/// For those families kappa(A) matches this within a small constant (the
/// off-diagonal coupling is bounded by a fixed fraction of the diagonal), so
/// it is the right scale factor for solution-error bounds without paying an
/// eigensolve per property iteration.
inline double diag_condition_estimate(const CsrMatrix& A) {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (index_t i = 0; i < A.n; ++i) {
    double d = 0.0;
    for (index_t k = A.row_ptr[static_cast<std::size_t>(i)];
         k < A.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      if (A.col_idx[static_cast<std::size_t>(k)] == i)
        d = std::fabs(A.vals[static_cast<std::size_t>(k)]);
    if (d == 0.0) continue;
    if (first) {
      lo = hi = d;
      first = false;
    } else {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  return first || lo == 0.0 ? 1.0 : hi / lo;
}

inline bool bits_equal_f32(const float* a, const float* b, index_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(float)) == 0;
}

}  // namespace feir::testtol
