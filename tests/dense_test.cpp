// Unit tests for the dense kernels: Cholesky, pivoted LU, Householder
// least squares — the direct solvers behind every inverted block relation.
#include <gtest/gtest.h>

#include "sparse/dense.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

DenseMatrix random_spd(index_t n, Rng& rng) {
  // B^T B + n I is SPD.
  DenseMatrix B(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) B(i, j) = rng.uniform(-1, 1);
  DenseMatrix A(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) s += B(k, i) * B(k, j);
      A(i, j) = s + (i == j ? static_cast<double>(n) : 0.0);
    }
  return A;
}

class DenseSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(DenseSizes, CholeskySolvesSpdSystem) {
  const index_t n = GetParam();
  Rng rng(n);
  DenseMatrix A = random_spd(n, rng);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  std::vector<double> b(static_cast<std::size_t>(n));
  dense_matvec(A, x_true.data(), b.data());

  DenseMatrix L = A;
  ASSERT_TRUE(cholesky_factor(L));
  cholesky_solve(L, b.data());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-8);
}

TEST_P(DenseSizes, LuSolvesGeneralSystem) {
  const index_t n = GetParam();
  Rng rng(n + 100);
  DenseMatrix A(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      A(i, j) = rng.uniform(-1, 1) + (i == j ? 3.0 : 0.0);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  std::vector<double> b(static_cast<std::size_t>(n));
  dense_matvec(A, x_true.data(), b.data());

  std::vector<index_t> piv;
  DenseMatrix LU = A;
  ASSERT_TRUE(lu_factor(LU, piv));
  lu_solve(LU, piv, b.data());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseSizes, ::testing::Values(1, 2, 5, 16, 64, 128));

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix A(2, 2);
  A(0, 0) = 1.0;
  A(0, 1) = A(1, 0) = 2.0;
  A(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_factor(A));
}

TEST(Lu, RejectsSingular) {
  DenseMatrix A(2, 2);
  A(0, 0) = 1.0;
  A(0, 1) = 2.0;
  A(1, 0) = 2.0;
  A(1, 1) = 4.0;
  std::vector<index_t> piv;
  EXPECT_FALSE(lu_factor(A, piv));
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  DenseMatrix A(2, 2);
  A(0, 0) = 0.0;
  A(0, 1) = 1.0;
  A(1, 0) = 1.0;
  A(1, 1) = 0.0;
  std::vector<index_t> piv;
  ASSERT_TRUE(lu_factor(A, piv));
  double b[2] = {3.0, 5.0};  // swap system: x = (5, 3)
  lu_solve(A, piv, b);
  EXPECT_NEAR(b[0], 5.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LeastSquares, ExactForSquareSystem) {
  Rng rng(17);
  const index_t n = 20;
  DenseMatrix A(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) A(i, j) = rng.uniform(-1, 1) + (i == j ? 4.0 : 0.0);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n));
  dense_matvec(A, x_true.data(), b.data());
  const std::vector<double> x = least_squares(A, b);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-8);
}

TEST(LeastSquares, MinimizesResidualForTallSystem) {
  Rng rng(23);
  const index_t m = 30, n = 8;
  DenseMatrix A(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) A(i, j) = rng.uniform(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(m));
  for (auto& v : b) v = rng.uniform(-1, 1);

  const std::vector<double> x = least_squares(A, b);

  // Normal-equation optimality: A^T (A x - b) ~ 0.
  std::vector<double> r(static_cast<std::size_t>(m));
  dense_matvec(A, x.data(), r.data());
  for (index_t i = 0; i < m; ++i) r[static_cast<std::size_t>(i)] -= b[static_cast<std::size_t>(i)];
  for (index_t j = 0; j < n; ++j) {
    double g = 0.0;
    for (index_t i = 0; i < m; ++i) g += A(i, j) * r[static_cast<std::size_t>(i)];
    EXPECT_NEAR(g, 0.0, 1e-10);
  }
}

TEST(LeastSquares, RejectsUnderdetermined) {
  DenseMatrix A(2, 3);
  std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(least_squares(A, b), std::invalid_argument);
}

}  // namespace
}  // namespace feir
