// Tests of the fixed-point (weighted-Jacobi sweep) preconditioner and its
// sparse partial application (§3.2): the k-hop closure recomputation must be
// bit-exact on the requested blocks.
#include <gtest/gtest.h>

#include "precond/fixedpoint.hpp"
#include "solvers/cg.hpp"
#include "sparse/generators.hpp"
#include "sparse/vecops.hpp"
#include "support/rng.hpp"

namespace feir {
namespace {

class SweepSuite : public ::testing::TestWithParam<int> {};

TEST_P(SweepSuite, PartialApplicationIsExactOnRequestedBlocks) {
  const int sweeps = GetParam();
  CsrMatrix A = laplace2d_5pt(16, 16);  // n = 256
  BlockLayout layout(A.n, 32);
  JacobiSweeps M(A, layout, sweeps);

  Rng rng(sweeps);
  std::vector<double> g(static_cast<std::size_t>(A.n));
  for (auto& v : g) v = rng.uniform(-1, 1);

  std::vector<double> z_full(g.size(), 0.0), z_part(g.size(), -7.0);
  M.apply(g.data(), z_full.data());
  M.apply_blocks({2, 5}, g.data(), z_part.data());

  for (index_t i = 0; i < A.n; ++i) {
    const index_t b = layout.block_of(i);
    if (b == 2 || b == 5)
      EXPECT_EQ(z_part[static_cast<std::size_t>(i)], z_full[static_cast<std::size_t>(i)])
          << "row " << i;
    else
      EXPECT_EQ(z_part[static_cast<std::size_t>(i)], -7.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, SweepSuite, ::testing::Values(1, 2, 3, 5));

TEST(JacobiSweeps, ClosureGrowsWithHops) {
  CsrMatrix A = laplace2d_5pt(16, 16);
  BlockLayout layout(A.n, 32);
  JacobiSweeps M(A, layout, 3);
  const auto c0 = M.closure({4}, 0);
  const auto c1 = M.closure({4}, 1);
  const auto c2 = M.closure({4}, 2);
  EXPECT_EQ(c0, (std::vector<index_t>{4}));
  EXPECT_GT(c1.size(), c0.size());
  EXPECT_GE(c2.size(), c1.size());
}

TEST(JacobiSweeps, OneSweepEqualsWeightedJacobi) {
  CsrMatrix A = laplace2d_5pt(8, 8);
  BlockLayout layout(A.n, 16);
  JacobiSweeps M(A, layout, 1, 0.5);
  std::vector<double> g(static_cast<std::size_t>(A.n), 2.0), z(g.size());
  M.apply(g.data(), z.data());
  for (index_t i = 0; i < A.n; ++i)
    EXPECT_NEAR(z[static_cast<std::size_t>(i)], 0.5 * 2.0 / A.at(i, i), 1e-14);
}

TEST(JacobiSweeps, AcceleratesCgAsAPreconditioner) {
  TestbedProblem p = make_testbed("thermal2", 0.15);
  BlockLayout layout(p.A.n, 64);
  JacobiSweeps M(p.A, layout, 3);

  SolveOptions opts;
  opts.tol = 1e-9;
  std::vector<double> x1(static_cast<std::size_t>(p.A.n), 0.0), x2 = x1;
  const SolveResult plain = cg_solve(p.A, p.b.data(), x1.data(), opts);
  const SolveResult pre = cg_solve(p.A, p.b.data(), x2.data(), opts, &M);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(JacobiSweeps, RejectsBadArguments) {
  CsrMatrix A = laplace2d_5pt(4, 4);
  BlockLayout layout(A.n, 8);
  EXPECT_THROW(JacobiSweeps(A, layout, 0), std::invalid_argument);
  CsrMatrix Z = CsrMatrix::from_triplets(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(JacobiSweeps(Z, BlockLayout(2, 2), 1), std::invalid_argument);
}

TEST(JacobiSweeps, ClosureCostIsLocalForStencils) {
  // On a banded problem the recovery working set stays a small fraction of
  // the domain — the property that makes partial preconditioner application
  // worthwhile (§3.2).
  CsrMatrix A = laplace2d_5pt(64, 64);  // n = 4096
  BlockLayout layout(A.n, 64);          // 64 blocks
  JacobiSweeps M(A, layout, 3);
  const auto work = M.closure({30}, 2);
  EXPECT_LT(work.size(), 10u);
}

}  // namespace
}  // namespace feir
